/**
 * @file
 * Fig. 21 — Time-series analysis across a power-down / power-up
 * cycle: benchmark progress (IPC) and dynamic system power.
 *
 * One representative workload (Redis) executes on LightPC and on
 * SysPC (LegacyPC + system images). Mid-run the power fails: LightPC
 * draws the EP-cut (Stop) and later re-executes from it (Go); SysPC
 * must finish dumping the system image past the hold-up window and
 * reload it at power-up.
 *
 * Paper anchors: LightPC Stop 19 Mcycles / Go 12.8 Mcycles vs SysPC
 * 7 Bcycles store / 4.2 Bcycles load (Go 358x faster); Stop consumes
 * 4.5 W / 53 mJ and Go 4.4 W / 52 mJ vs SysPC's 20 W / 19.7 J dump.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "mem/timed_mem.hh"
#include "persist/checkpoint.hh"
#include "platform/system.hh"
#include "power/power_model.hh"
#include "stats/table.hh"
#include "stats/time_series.hh"
#include "workload/spec.hh"
#include "workload/synthetic.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

constexpr Tick sliceTicks = 100 * tickUs;
constexpr Tick offGap = 100 * tickMs;  // mains outage duration

struct Timeline
{
    stats::TimeSeries ipc{"ipc"};
    stats::TimeSeries watts{"power"};
    Tick persistDown = 0;  ///< power-down persistence work
    Tick persistUp = 0;    ///< power-up recovery work
    double downJoules = 0.0;
    double upJoules = 0.0;
};

/** Sample benchmark IPC and platform power over execution slices. */
void
sampleExec(System &system, Tick until, Timeline &tl,
           std::uint32_t active_cores)
{
    const power::PowerModel &power = system.powerModel();
    std::uint64_t prev_instr = 0;
    for (std::uint32_t c = 0; c < system.coreCount(); ++c)
        prev_instr += system.core(c).stats().instructions;
    std::uint64_t prev_mem = system.psm().stats().reads
        + system.psm().stats().writes;
    std::uint64_t prev_dram =
        system.dram() ? system.dram()->totalAccesses() : 0;

    while (system.eventQueue().now() < until
           && !system.eventQueue().empty()) {
        const Tick slice_end =
            std::min(until, system.eventQueue().now() + sliceTicks);
        system.eventQueue().run(slice_end);

        std::uint64_t instr = 0;
        for (std::uint32_t c = 0; c < system.coreCount(); ++c)
            instr += system.core(c).stats().instructions;
        const std::uint64_t mem_now = system.psm().stats().reads
            + system.psm().stats().writes;
        const std::uint64_t dram_now =
            system.dram() ? system.dram()->totalAccesses() : 0;

        const double cycles = static_cast<double>(sliceTicks)
            / periodFromMhz(1600) * system.coreCount();
        tl.ipc.record(slice_end,
                      static_cast<double>(instr - prev_instr)
                          / cycles * system.coreCount());

        power::ActivitySample sample;
        sample.duration = sliceTicks;
        sample.coresActive = active_cores;
        sample.coresIdle = system.coreCount() - active_cores;
        sample.coreUtilization = 0.9;
        sample.pramDimms = 6;
        sample.pramReads = mem_now - prev_mem;
        if (system.dram()) {
            sample.dramDimms = system.dram()->dimmCount();
            sample.dramAccesses = dram_now - prev_dram;
        }
        tl.watts.record(slice_end, power.powerOf(sample));

        prev_instr = instr;
        prev_mem = mem_now;
        prev_dram = dram_now;
        if (system.eventQueue().now() < slice_end)
            break;  // cores ran out of work
    }
}

/** Record a persistence interval at a fixed power level. */
void
recordPhase(Timeline &tl, Tick from, Tick to, double watts,
            bool power_up)
{
    tl.ipc.record(from, 0.0);
    tl.ipc.record(to, 0.0);
    tl.watts.record(from, watts);
    tl.watts.record(to, watts);
    const double joules = watts * ticksToSec(to - from);
    if (power_up) {
        tl.persistUp += to - from;
        tl.upJoules += joules;
    } else {
        tl.persistDown += to - from;
        tl.downJoules += joules;
    }
}

double
persistWatts(const System &, bool cores_on, bool dram_on)
{
    // Persistence phases: cores partially busy with kernel work, no
    // benchmark; memory traffic folded into the phase power level.
    power::ActivitySample sample;
    sample.duration = tickSec;
    sample.coresActive = cores_on ? 8 : 0;
    sample.coresIdle = cores_on ? 0 : 8;
    sample.coreUtilization = 0.45;
    sample.pramDimms = 6;
    if (dram_on)
        sample.dramDimms = 6;
    return power::PowerModel().powerOf(sample);
}

} // namespace

int
main()
{
    bench::banner("Fig. 21", "dynamic IPC and power across a"
                             " power-down / power-up cycle");

    const auto &spec = workload::findWorkload("Redis");
    constexpr std::uint64_t scale = 12000;
    const Tick down_at = 2 * tickMs;

    // ---- LightPC: SnG -------------------------------------------
    Timeline light;
    Tick light_stop_ticks, light_go_ticks;
    {
        SystemConfig config;
        config.kind = PlatformKind::LightPC;
        config.scaleDivisor = scale;
        System system(config);
        workload::SyntheticConfig wconfig;
        wconfig.scaleDivisor = scale;
        auto streams = workload::makeStreams(
            spec, wconfig, system.coreCount(), System::workloadBase);
        for (std::size_t i = 0; i < streams.size(); ++i)
            system.core(static_cast<std::uint32_t>(i))
                .run(*streams[i], 0);

        sampleExec(system, down_at, light, 8);
        for (std::uint32_t c = 0; c < system.coreCount(); ++c)
            system.core(c).stop();
        const auto stop =
            system.sng().stop(system.eventQueue().now());
        light_stop_ticks = stop.totalTicks();
        recordPhase(light, stop.start, stop.offlineDone,
                    persistWatts(system, true, false), false);

        const auto go = system.sng().resume(stop.offlineDone
                                            + offGap);
        light_go_ticks = go.totalTicks();
        recordPhase(light, go.start, go.done,
                    persistWatts(system, true, false), true);

        // Re-execute the parked benchmark from the EP-cut.
        for (std::size_t i = 0; i < streams.size(); ++i)
            system.core(static_cast<std::uint32_t>(i))
                .run(*streams[i], go.done);
        system.eventQueue().run(go.done);  // skip the outage gap
        sampleExec(system, go.done + 2 * tickMs, light, 8);
    }

    // ---- SysPC: system images -----------------------------------
    Timeline sys;
    Tick sys_store_ticks, sys_load_ticks;
    {
        SystemConfig config;
        config.kind = PlatformKind::LegacyPC;
        config.scaleDivisor = scale;
        System system(config);
        workload::SyntheticConfig wconfig;
        wconfig.scaleDivisor = scale;
        auto streams = workload::makeStreams(
            spec, wconfig, system.coreCount(), System::workloadBase);
        for (std::size_t i = 0; i < streams.size(); ++i)
            system.core(static_cast<std::uint32_t>(i))
                .run(*streams[i], 0);

        sampleExec(system, down_at, sys, 8);
        for (std::uint32_t c = 0; c < system.coreCount(); ++c)
            system.core(c).stop();

        mem::TimedMem pmem(system.memoryPort());
        persist::SysPc syspc(pmem);
        const std::uint64_t image =
            system.kernel().systemImageBytes();
        const Tick t0 = system.eventQueue().now();
        const Tick dumped = syspc.dumpImage(t0, image);
        sys_store_ticks = dumped - t0;
        recordPhase(sys, t0, dumped,
                    persistWatts(system, true, true), false);

        const Tick up_at = dumped + offGap;
        const Tick loaded = syspc.loadImage(up_at, image);
        sys_load_ticks = loaded - up_at;
        recordPhase(sys, up_at, loaded,
                    persistWatts(system, true, true), true);

        for (std::size_t i = 0; i < streams.size(); ++i)
            system.core(static_cast<std::uint32_t>(i))
                .run(*streams[i], loaded);
        system.eventQueue().run(loaded);  // skip the outage gap
        sampleExec(system, loaded + 2 * tickMs, sys, 8);
    }

    // ---- report ---------------------------------------------------
    auto mc = [](Tick t) {
        return static_cast<double>(t / periodFromMhz(1600)) / 1e6;
    };
    stats::Table table({"platform", "down work", "down energy",
                        "up work", "up energy"});
    table.addRow({"LightPC",
                  stats::Table::num(mc(light_stop_ticks), 1) + " Mc",
                  stats::Table::num(light.downJoules * 1e3, 1)
                      + " mJ",
                  stats::Table::num(mc(light_go_ticks), 1) + " Mc",
                  stats::Table::num(light.upJoules * 1e3, 1)
                      + " mJ"});
    table.addRow({"SysPC",
                  stats::Table::num(mc(sys_store_ticks) / 1e3, 2)
                      + " Bc",
                  stats::Table::num(sys.downJoules, 1) + " J",
                  stats::Table::num(mc(sys_load_ticks) / 1e3, 2)
                      + " Bc",
                  stats::Table::num(sys.upJoules, 1) + " J"});
    table.print(std::cout);

    std::cout << "\n(a) benchmark IPC series (downsampled; 0 during"
                 " persistence)\n";
    for (const auto &[name, tl] :
         {std::pair<const char *, const Timeline &>{"LightPC",
                                                    light},
          {"SysPC", sys}}) {
        std::cout << name << ":";
        for (const auto &s : tl.ipc.downsample(16))
            std::cout << " " << stats::Table::num(s.value, 2);
        std::cout << "\n";
    }
    std::cout << "\n(b) power series (downsampled, W)\n";
    for (const auto &[name, tl] :
         {std::pair<const char *, const Timeline &>{"LightPC",
                                                    light},
          {"SysPC", sys}}) {
        std::cout << name << ":";
        for (const auto &s : tl.watts.downsample(16))
            std::cout << " " << stats::Table::num(s.value, 1);
        std::cout << "\n";
    }
    std::cout << "\n";

    bench::paperRef("LightPC Stop 19 Mc / Go 12.8 Mc vs SysPC 7 Bc"
                    " store / 4.2 Bc load (Go 358x faster); Stop"
                    " 4.5 W / 53 mJ, Go 4.4 W / 52 mJ vs SysPC 20 W"
                    " / 19.7 J");

    bench::check(mc(light_stop_ticks) < 40.0,
                 "Stop completes within tens of Mcycles");
    bench::check(mc(light_go_ticks) < 40.0,
                 "Go completes within tens of Mcycles");
    bench::check(sys_store_ticks
                     > 100 * static_cast<Tick>(light_stop_ticks),
                 "SysPC's image store dwarfs LightPC's Stop");
    bench::check(sys_load_ticks
                     > 50 * static_cast<Tick>(light_go_ticks),
                 "SysPC's image load dwarfs LightPC's Go");
    bench::check(light.downJoules + light.upJoules < 0.3,
                 "SnG spends millijoules across the power cycle");
    bench::check(sys.downJoules > 5.0,
                 "SysPC needs joules of external energy to finish"
                 " its dump");
    return bench::result();
}
