/**
 * @file
 * Fig. 16 — Head-of-line blocking: LightPC-B's memory-level read
 * latency normalized to LightPC's.
 *
 * The paper reports 7x-14.8x (9x average); wrf (which re-reads what
 * it just wrote) worst, mcf (vanishingly few writes) least. Our
 * synthetic traffic reproduces the ordering and the per-workload
 * ranking; the absolute factor is smaller (see EXPERIMENTS.md).
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "platform/system.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workload/spec.hh"

using namespace lightpc;
using namespace lightpc::platform;

namespace
{

RunResult
runOn(PlatformKind kind, const workload::WorkloadSpec &spec)
{
    SystemConfig config;
    config.kind = kind;
    config.scaleDivisor = 18000;
    System system(config);
    return system.run(spec);
}

} // namespace

int
main()
{
    bench::banner("Fig. 16", "LightPC-B read latency normalized to"
                             " LightPC");

    stats::Table table({"workload", "LightPC(ns)", "LightPC-B(ns)",
                        "B/LightPC", "blocked", "reconstructed"});
    std::vector<double> ratios;
    double wrf_ratio = 0.0, mcf_ratio = 0.0, bzip_ratio = 0.0;

    for (const auto &spec : workload::tableTwo()) {
        const auto light = runOn(PlatformKind::LightPC, spec);
        const auto b = runOn(PlatformKind::LightPCB, spec);
        const double ratio =
            b.memReadLatencyNs / light.memReadLatencyNs;
        ratios.push_back(ratio);
        if (spec.name == "wrf")
            wrf_ratio = ratio;
        if (spec.name == "mcf")
            mcf_ratio = ratio;
        if (spec.name == "bzip2")
            bzip_ratio = ratio;

        table.addRow(
            {spec.name, stats::Table::num(light.memReadLatencyNs, 1),
             stats::Table::num(b.memReadLatencyNs, 1),
             stats::Table::ratio(ratio),
             std::to_string(b.psmStats.blockedReads),
             std::to_string(light.psmStats.reconstructedReads)});
    }
    table.print(std::cout);

    const double avg = stats::geomean(ratios);
    std::cout << "\ngeomean read-latency blowup: "
              << stats::Table::ratio(avg) << "\n\n";

    bench::paperRef("7x-14.8x read latency reduction by LightPC"
                    " (9x average); wrf worst (14.8x), mcf least");

    bench::check(avg > 1.2,
                 "baseline reads are consistently slower");
    bench::check(bzip_ratio > 1.5 && wrf_ratio > 1.2,
                 "RAW/write-miss heavy workloads blow up most");
    bench::check(mcf_ratio < 1.1,
                 "mcf (few writes) barely suffers");
    double worst = 0.0;
    for (double r : ratios)
        worst = std::max(worst, r);
    bench::check(mcf_ratio < worst / 1.4,
                 "clear spread between best and worst cases");
    return bench::result();
}
