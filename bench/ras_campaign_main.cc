/**
 * @file
 * Media-error RAS campaign driver.
 *
 * Sweeps raw bit-error rate x media wear x machine-check policy,
 * with seeded trials per cell; every trial runs demand traffic with
 * the patrol scrubber interleaved, escalates uncorrectables into the
 * MCE handler, and finishes with an SnG stop/resume (a fraction of
 * trials also lose power mid-stop). Asserts the RAS invariant: zero
 * silent data corruption — every media fault resolves to a counted
 * correction, a retirement, or a contained machine check. Emits
 * BENCH_ras.json.
 *
 *   ras_campaign_main [--seeds N] [--ops N] [--seed S]
 *                     [--threads N|-j N] [--out FILE]
 *
 * --seeds is per (ber, wear, policy) cell; the default 32 yields
 * 4 x 2 x 2 x 32 = 512 seeded trials. --threads 0 (the default)
 * uses every host thread; results and digest are identical at any
 * thread count.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.hh"
#include "fault/ras_campaign.hh"
#include "sim/parallel.hh"
#include "stats/table.hh"

using namespace lightpc;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seeds N] [--ops N] [--seed S]"
                 " [--threads N|-j N] [--out FILE]\n",
                 argv0);
    return 2;
}

std::string
fmtRate(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    fault::RasCampaignConfig config;
    std::string out = "BENCH_ras.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                std::exit(usage(argv[0]));
            return argv[++i];
        };
        if (arg == "--seeds")
            config.seedsPerCell = std::strtoull(value(), nullptr, 10);
        else if (arg == "--ops")
            config.opsPerTrial = std::strtoull(value(), nullptr, 10);
        else if (arg == "--seed")
            config.seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--threads" || arg == "-j")
            config.threads = sim::parseThreadsArg(value());
        else if (arg == "--out")
            out = value();
        else
            return usage(argv[0]);
    }
    if (config.seedsPerCell == 0 || config.opsPerTrial == 0)
        return usage(argv[0]);
    config.threads = sim::resolveThreads(config.threads);

    bench::banner("RAS campaign",
                  "seeded media faults vs the zero-SDC invariant");
    bench::paperRef("LightPC Section V-A / VIII: ECC corrects, scrub"
                    " retires, the MCE contains or cold-boots —"
                    " never silent corruption");

    const fault::RasCampaignResult r = fault::runRasCampaign(config);

    stats::Table table({"ber", "wear", "policy", "trials", "checked",
                        "xcc", "rs", "uncorr", "retired", "mce",
                        "sdc"});
    for (const fault::RasCell &c : r.cells) {
        table.addRow({fmtRate(c.ber), fmtRate(c.wear), c.policy,
                      std::to_string(c.trials),
                      std::to_string(c.checkedReads),
                      std::to_string(c.corrected),
                      std::to_string(c.symbolCorrections),
                      std::to_string(c.uncorrectable),
                      std::to_string(c.retired),
                      std::to_string(c.mceContained
                                     + c.mceColdBoots),
                      std::to_string(c.sdc)});
    }
    table.print(std::cout);

    std::cout << "\ntotals: " << r.trials << " trials, "
              << r.checkedReads << " checked reads, "
              << r.correctedReads << " XCC corrections, "
              << r.symbolCorrections << " RS corrections, "
              << r.parityRewrites << " parity rewrites, "
              << r.uncorrectableReads << " uncorrectable\n"
              << "mce: " << r.mceContained << " contained ("
              << r.tasksKilled << " tasks killed), "
              << r.mceColdBoots << " cold boots ("
              << r.kernelEscalations << " kernel escalations)\n"
              << "retire: " << r.linesRetired << " lines, "
              << r.spareExhausted << " spare-exhausted\n"
              << "scrub: " << r.scrubbedLines << " lines, "
              << r.scrubRepairs << " repairs, "
              << r.scrubDeferrals << " deferrals\n"
              << "sng: " << r.resumes << " resumes, "
              << r.coldBootResumes << " cold boots, "
              << r.cutTrials << " power-cut trials ("
              << r.droppedWrites << " dropped, " << r.tornWrites
              << " torn), " << r.containSurvivedSng
              << " contain-then-resume survivals\n";
    for (const std::string &note : r.violationNotes)
        std::cout << "  VIOLATION " << note << "\n";

    const std::uint64_t expected_trials = config.bers.size()
        * config.wearLevels.size() * 2 * config.seedsPerCell;
    bench::check(r.trials == expected_trials,
                 "every cell ran its seeded trials ("
                 + std::to_string(r.trials) + ")");
    // The checked-in artifact must come from a full-size run; CI
    // smoke runs (--seeds 2) are exempt from the floor.
    if (config.seedsPerCell >= 32)
        bench::check(r.trials >= 500,
                     "campaign ran >= 500 seeded trials ("
                     + std::to_string(r.trials) + ")");
    bench::check(r.sdcEvents == 0,
                 "zero silent-data-corruption events over "
                 + std::to_string(r.checkedReads)
                 + " checked reads");
    bench::check(r.violations == 0,
                 "zero durability-invariant violations");
    bench::check(r.correctedReads > 0 && r.symbolCorrections > 0,
                 "both ECC tiers exercised (XCC + RS erasure)");
    bench::check(r.mceContained > 0 && r.mceColdBoots > 0,
                 "both MCE policy arms exercised");
    bench::check(r.linesRetired > 0 && r.scrubRepairs > 0,
                 "scrubber repaired and retirement engaged");
    bench::check(r.containSurvivedSng > 0,
                 "a contained MCE (line retired) survived SnG"
                 " stop/resume");
    bench::check(r.cutTrials > 0,
                 "combined power-cut + media-fault trials ran");
    bench::check(r.resumes + r.coldBootResumes == r.trials,
                 "every trial resolved to resume or cold boot");

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::perror(out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ras_campaign\",\n");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(config.seed));
    std::fprintf(f, "  \"threads\": %u,\n", config.threads);
    std::fprintf(f, "  \"digest\": \"0x%016llx\",\n",
                 static_cast<unsigned long long>(r.digest));
    std::fprintf(f, "  \"trials\": %llu,\n",
                 static_cast<unsigned long long>(r.trials));
    std::fprintf(f, "  \"ops_per_trial\": %llu,\n",
                 static_cast<unsigned long long>(config.opsPerTrial));
    std::fprintf(f, "  \"sdc_events\": %llu,\n",
                 static_cast<unsigned long long>(r.sdcEvents));
    std::fprintf(f, "  \"violations\": %llu,\n",
                 static_cast<unsigned long long>(r.violations));
    std::fprintf(f, "  \"checked_reads\": %llu,\n",
                 static_cast<unsigned long long>(r.checkedReads));
    std::fprintf(f, "  \"xcc_corrections\": %llu,\n",
                 static_cast<unsigned long long>(r.correctedReads));
    std::fprintf(f, "  \"rs_corrections\": %llu,\n",
                 static_cast<unsigned long long>(r.symbolCorrections));
    std::fprintf(f, "  \"parity_rewrites\": %llu,\n",
                 static_cast<unsigned long long>(r.parityRewrites));
    std::fprintf(f, "  \"uncorrectable_reads\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.uncorrectableReads));
    std::fprintf(f, "  \"mce_contained\": %llu,\n",
                 static_cast<unsigned long long>(r.mceContained));
    std::fprintf(f, "  \"mce_cold_boots\": %llu,\n",
                 static_cast<unsigned long long>(r.mceColdBoots));
    std::fprintf(f, "  \"tasks_killed\": %llu,\n",
                 static_cast<unsigned long long>(r.tasksKilled));
    std::fprintf(f, "  \"kernel_escalations\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.kernelEscalations));
    std::fprintf(f, "  \"lines_retired\": %llu,\n",
                 static_cast<unsigned long long>(r.linesRetired));
    std::fprintf(f, "  \"scrubbed_lines\": %llu,\n",
                 static_cast<unsigned long long>(r.scrubbedLines));
    std::fprintf(f, "  \"scrub_repairs\": %llu,\n",
                 static_cast<unsigned long long>(r.scrubRepairs));
    std::fprintf(f, "  \"scrub_deferrals\": %llu,\n",
                 static_cast<unsigned long long>(r.scrubDeferrals));
    std::fprintf(f, "  \"sng_resumes\": %llu,\n",
                 static_cast<unsigned long long>(r.resumes));
    std::fprintf(f, "  \"sng_cold_boots\": %llu,\n",
                 static_cast<unsigned long long>(r.coldBootResumes));
    std::fprintf(f, "  \"power_cut_trials\": %llu,\n",
                 static_cast<unsigned long long>(r.cutTrials));
    std::fprintf(f, "  \"dropped_writes\": %llu,\n",
                 static_cast<unsigned long long>(r.droppedWrites));
    std::fprintf(f, "  \"torn_writes\": %llu,\n",
                 static_cast<unsigned long long>(r.tornWrites));
    std::fprintf(f, "  \"contain_survived_sng\": %llu,\n",
                 static_cast<unsigned long long>(
                     r.containSurvivedSng));
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
        const fault::RasCell &c = r.cells[i];
        std::fprintf(f,
                     "    {\"ber\": %g, \"wear\": %g,"
                     " \"policy\": \"%s\", \"trials\": %llu,"
                     " \"checked_reads\": %llu,"
                     " \"xcc_corrections\": %llu,"
                     " \"rs_corrections\": %llu,"
                     " \"parity_rewrites\": %llu,"
                     " \"uncorrectable\": %llu,"
                     " \"retired\": %llu,"
                     " \"mce_contained\": %llu,"
                     " \"mce_cold_boots\": %llu,"
                     " \"sdc\": %llu}%s\n",
                     c.ber, c.wear, c.policy.c_str(),
                     static_cast<unsigned long long>(c.trials),
                     static_cast<unsigned long long>(c.checkedReads),
                     static_cast<unsigned long long>(c.corrected),
                     static_cast<unsigned long long>(
                         c.symbolCorrections),
                     static_cast<unsigned long long>(
                         c.parityRewrites),
                     static_cast<unsigned long long>(
                         c.uncorrectable),
                     static_cast<unsigned long long>(c.retired),
                     static_cast<unsigned long long>(c.mceContained),
                     static_cast<unsigned long long>(c.mceColdBoots),
                     static_cast<unsigned long long>(c.sdc),
                     i + 1 < r.cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::cout << "\nwrote " << out << "\n";

    return bench::result();
}
