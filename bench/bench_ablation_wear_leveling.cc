/**
 * @file
 * Ablation — Start-Gap wear leveling: performance cost vs wear
 * spread across gap-movement thresholds (Sections V-A and VIII).
 *
 * Every `threshold` writes the gap moves, costing one extra line
 * copy on the media. Small thresholds level harder but burn
 * bandwidth; the paper ships 100. This bench sweeps the threshold
 * under a hot-spotted write stream and reports both sides of the
 * trade plus the projected lifetime of the most-worn region.
 */

#include <iostream>
#include <string>

#include "bench_common.hh"
#include "psm/psm.hh"
#include "sim/rng.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

using namespace lightpc;
using psm::Psm;
using psm::PsmParams;

namespace
{

constexpr std::uint64_t totalWrites = 300'000;

struct Outcome
{
    Tick elapsed = 0;
    std::uint64_t moves = 0;
    double spread = 0.0;      ///< max/mean per-region wear
    double outlier = 0.0;     ///< max/p99 per-region wear
    double lifetime = 0.0;    ///< of the most-worn region
};

Outcome
drive(std::uint64_t threshold, bool hot_spot)
{
    PsmParams params;
    params.wearLeveling = threshold != 0;
    if (threshold)
        params.wearThreshold = threshold;
    params.dimm.device.capacityBytes = 64 << 20;
    params.dimm.device.wearRegionBytes = 1 << 20;
    params.dimm.device.enduranceCycles = 50'000'000;
    Psm psm(params);

    Rng rng(7);
    mem::MemRequest req;
    req.op = mem::MemOp::Write;
    Tick t = 0;
    for (std::uint64_t i = 0; i < totalWrites; ++i) {
        // Hot-spot: 90% of writes in a 1 MB region (the leveling
        // stressor). Uniform: the fair baseline for measuring the
        // gap-movement bandwidth cost, since a perfectly-aligned
        // hot region changes unit placement once the randomizer is
        // on, which is a locality effect rather than leveling cost.
        req.addr = ((hot_spot && rng.chance(0.9))
                        ? rng.below(1 << 20)
                        : rng.below(psm.capacityBytes()))
            & ~63ull;
        t = psm.access(req, t).completeAt + 50;
    }
    t = psm.flush(t);

    Outcome out;
    out.elapsed = t;
    out.moves = psm.stats().wearMoves;
    // Per-region wear distribution, PSM-wide, through the same
    // histogram the RAS campaign samples (quantiles come from the
    // log buckets; spread keeps the historical max/mean form).
    const stats::Histogram wear = psm.wearHistogram();
    out.spread = wear.mean() > 0.0
        ? static_cast<double>(wear.max()) / wear.mean()
        : 0.0;
    // max/p99: how far the single worst region sticks out past the
    // tail. Leveling cannot shrink total wear, but it must turn the
    // lone hot outlier into a smooth tail (p99/p50 moves the other
    // way — spreading hot traffic across regions *raises* the tail
    // relative to the background median).
    const std::uint64_t p99 = wear.percentile(0.99);
    out.outlier = p99
        ? static_cast<double>(wear.max()) / static_cast<double>(p99)
        : 0.0;
    double lifetime = 1.0;
    for (std::uint32_t d = 0; d < params.dimms; ++d)
        for (std::uint32_t g = 0; g < psm.dimm(d).groupCount(); ++g)
            lifetime = std::min(
                lifetime, psm.dimm(d).group(g).lifetimeRemaining());
    out.lifetime = lifetime;
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablation", "Start-Gap threshold sweep: leveling"
                              " strength vs write-bandwidth cost");

    const std::uint64_t thresholds[] = {0, 400, 100, 25};
    stats::Table table({"threshold", "gap moves", "uniform time(ms)",
                        "bandwidth cost", "hot-spot spread",
                        "max/p99", "lifetime"});
    Outcome off_uniform{}, off_hot{}, default_uniform{},
        default_hot{}, aggressive_hot{};
    for (const std::uint64_t threshold : thresholds) {
        const Outcome uniform = drive(threshold, false);
        const Outcome hot = drive(threshold, true);
        if (threshold == 0) {
            off_uniform = uniform;
            off_hot = hot;
        }
        if (threshold == 100) {
            default_uniform = uniform;
            default_hot = hot;
        }
        if (threshold == 25)
            aggressive_hot = hot;
        table.addRow(
            {threshold ? std::to_string(threshold) : "off",
             std::to_string(uniform.moves),
             stats::Table::num(ticksToMs(uniform.elapsed), 2),
             threshold ? stats::Table::percent(
                 static_cast<double>(uniform.elapsed)
                         / off_uniform.elapsed
                     - 1.0,
                 2) : "-",
             stats::Table::ratio(hot.spread, 1),
             stats::Table::ratio(hot.outlier, 1),
             stats::Table::percent(hot.lifetime, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperRef("Start-Gap shifts one 64 B line per 100 writes"
                    " (default) with a static randomizer; [53]"
                    " reports 97% of theoretical lifetime at"
                    " negligible overhead");

    bench::check(default_hot.spread < 0.7 * off_hot.spread,
                 "the default threshold meaningfully flattens a"
                 " hot spot");
    bench::check(aggressive_hot.spread
                     <= default_hot.spread * 1.05,
                 "more aggressive leveling never spreads worse");
    const double overhead =
        static_cast<double>(default_uniform.elapsed)
            / off_uniform.elapsed
        - 1.0;
    bench::check(overhead < 0.08,
                 "the default threshold costs only a few percent of"
                 " write bandwidth");
    bench::check(default_hot.lifetime >= off_hot.lifetime,
                 "leveling never shortens the worst region's"
                 " lifetime");
    bench::check(default_hot.outlier < off_hot.outlier,
                 "leveling pulls the worst region's wear into the"
                 " p99 tail under a hot spot");
    return bench::result();
}
