/**
 * @file
 * Fleet-level availability of a replicated KV cluster under
 * rack-correlated cut storms (the paper's full system persistence
 * argument, compounded across machines).
 *
 * runClusterCampaign() sweeps replica count x storm intensity x all
 * five persistence modes, seedsPerCell seeded trials per cell — each
 * trial a full cluster of LightPC machines behind a load balancer,
 * with primary/backup replication, epoch-numbered elections, and a
 * client fleet measuring availability from the outside. Every cell
 * column (same replicas, intensity, seed index) replays the same
 * storm schedule against each mode, so the comparison is paired.
 *
 *   bench_cluster [--seeds N] [--seed S] [--out FILE]
 *       [--runfor-ms MS] [--arrivals PER_SEC] [--clients N]
 *       [--threads N|-j N]
 *
 * Anchors (exit nonzero on failure):
 *  - >= 30 cells x seedsPerCell trials actually ran;
 *  - zero lost acked PUTs, zero split-brain epochs, zero divergent
 *    commits, zero invariant violations across the whole campaign;
 *  - in every (replicas, intensity) cell, SnG *and* SnG-OpLog mean
 *    write availability strictly exceeds each checkpointing
 *    baseline's (SysPC, S-CheckPC, A-CheckPC);
 *  - Stop-and-Go rejoiners catch up by delta sync while cold-booting
 *    baselines pay full resyncs;
 *  - the campaign digest is reproducible under a fixed seed (the
 *    sweep runs twice and the digests must match).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fault/cluster_campaign.hh"
#include "sim/parallel.hh"
#include "stats/table.hh"

using namespace lightpc;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seeds N] [--seed S] [--out FILE]"
                 " [--runfor-ms MS] [--arrivals PER_SEC]"
                 " [--clients N] [--threads N|-j N]\n",
                 argv0);
    return 2;
}

double
msOf(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickMs);
}

bool
isBaseline(net::PersistMode mode)
{
    return mode == net::PersistMode::SysPc
           || mode == net::PersistMode::SCheckPc
           || mode == net::PersistMode::ACheckPc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t seeds = 10;
    std::uint64_t seed = 42;
    std::uint64_t runforMs = 2000;
    double arrivals = 1500.0;
    std::uint32_t clients = 120;
    unsigned threads = 0;
    std::string out = "BENCH_cluster.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seeds")
            seeds = std::strtoull(value(), nullptr, 10);
        else if (arg == "--seed")
            seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--out")
            out = value();
        else if (arg == "--runfor-ms")
            runforMs = std::strtoull(value(), nullptr, 10);
        else if (arg == "--arrivals")
            arrivals = std::strtod(value(), nullptr);
        else if (arg == "--clients")
            clients = std::strtoul(value(), nullptr, 10);
        else if (arg == "--threads" || arg == "-j")
            threads = sim::parseThreadsArg(value());
        else
            return usage(argv[0]);
    }
    if (seeds == 0 || runforMs == 0 || arrivals <= 0.0 || clients == 0)
        return usage(argv[0]);
    threads = sim::resolveThreads(threads);

    bench::banner("Cluster availability",
                  "replicated KV fleet under rack-correlated cut"
                  " storms: failover, catch-up, and write/read"
                  " availability");
    bench::paperRef("full system persistence compounds at fleet"
                    " level: a Stop-and-Go replica rejoins by delta"
                    " sync in ~100 ms while checkpointing baselines"
                    " cold-boot and pay a full state resync"
                    " (Sections V-VI)");

    fault::ClusterCampaignConfig cfg;
    cfg.seed = seed;
    cfg.seedsPerCell = seeds;
    cfg.runFor = runforMs * tickMs;
    cfg.drainGrace = 2 * tickSec;
    cfg.clients = clients;
    cfg.arrivalsPerSec = arrivals;
    cfg.threads = threads;

    const std::uint64_t trials = fault::clusterCampaignTrials(cfg);
    std::cout << "sweeping " << cfg.replicaCounts.size()
              << " replica counts x " << cfg.intensities.size()
              << " storm intensities x " << cfg.modes.size()
              << " modes x " << seeds << " seeds = " << trials
              << " trials on " << threads << " thread(s)...\n";

    const fault::ClusterCampaignResult res =
        fault::runClusterCampaign(cfg);
    std::cout << "repeating the sweep (determinism)...\n\n";
    const fault::ClusterCampaignResult repeat =
        fault::runClusterCampaign(cfg);

    stats::Table table({"replicas", "storm", "mode", "wAvail mean",
                        "wAvail min", "rAvail mean", "worst gap ms",
                        "deltas", "fulls", "cold", "lost", "split"});
    for (const fault::ClusterCellStats &c : res.cells) {
        char wm[32], wn[32], rm[32], gap[32];
        std::snprintf(wm, sizeof(wm), "%.4f", c.writeAvailMean);
        std::snprintf(wn, sizeof(wn), "%.4f", c.writeAvailMin);
        std::snprintf(rm, sizeof(rm), "%.4f", c.readAvailMean);
        std::snprintf(gap, sizeof(gap), "%.1f",
                      msOf(c.worstWriteGap));
        table.addRow({std::to_string(c.replicas),
                      std::to_string(c.intensity), c.modeName, wm, wn,
                      rm, gap, std::to_string(c.syncDeltas),
                      std::to_string(c.syncFulls),
                      std::to_string(c.coldBoots),
                      std::to_string(c.lostAckedPuts),
                      std::to_string(c.splitBrainEpochs)});
    }
    table.print(std::cout);

    for (const std::string &note : res.violationNotes)
        std::cout << "  VIOLATION " << note << "\n";

    // --- anchors --------------------------------------------------

    bench::check(res.trials == trials && res.trials >= 30 * seeds,
                 "every grid trial ran ("
                     + std::to_string(res.trials) + ")");
    bench::check(res.lostAckedPuts == 0,
                 "zero acked-then-lost PUTs fleet-wide");
    bench::check(res.splitBrainEpochs == 0,
                 "zero split-brain epochs (no two leaders acked one"
                 " epoch)");
    bench::check(res.divergentCommits == 0,
                 "zero divergent commits (one seq, one content)");
    bench::check(res.violations == 0,
                 "zero invariant violations across the campaign");

    // Per-cell strict separation: SnG and SnG-OpLog above every
    // checkpointing baseline under the same replicas/intensity/seeds.
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             std::vector<const fault::ClusterCellStats *>>
        columns;
    for (const fault::ClusterCellStats &c : res.cells)
        columns[{c.replicas, c.intensity}].push_back(&c);
    std::uint64_t sngDeltas = 0, baseFulls = 0, baseCold = 0;
    for (const auto &[key, cells] : columns) {
        const fault::ClusterCellStats *sng = nullptr, *oplog = nullptr;
        for (const fault::ClusterCellStats *c : cells) {
            if (c->mode == net::PersistMode::SnG)
                sng = c;
            if (c->mode == net::PersistMode::OpLog)
                oplog = c;
        }
        const std::string where = "replicas=" + std::to_string(key.first)
                                  + " storm=" + std::to_string(key.second);
        bench::check(sng && oplog, where + ": SnG and OpLog cells ran");
        if (!sng || !oplog)
            continue;
        sngDeltas += sng->syncDeltas + oplog->syncDeltas;
        for (const fault::ClusterCellStats *c : cells) {
            if (!isBaseline(c->mode))
                continue;
            baseFulls += c->syncFulls;
            baseCold += c->coldBoots;
            bench::check(sng->writeAvailMean > c->writeAvailMean,
                         where + ": SnG write availability above "
                             + c->modeName + "'s");
            bench::check(oplog->writeAvailMean > c->writeAvailMean,
                         where + ": SnG-OpLog write availability"
                                 " above " + c->modeName + "'s");
            bench::check(sng->worstWriteGap < c->worstWriteGap,
                         where + ": SnG worst write gap below "
                             + c->modeName + "'s");
        }
        bench::check(sng->coldBoots == 0 && oplog->coldBoots == 0,
                     where + ": SnG/OpLog rode every storm on"
                             " hold-up (no cold boots)");
        bench::check(sng->readAvailMean >= sng->writeAvailMean,
                     where + ": reads no less available than writes"
                             " (read-only degradation)");
    }
    bench::check(sngDeltas > 0,
                 "Stop-and-Go rejoiners caught up by delta sync");
    bench::check(baseFulls > 0,
                 "cold-booting baselines paid full resyncs");
    bench::check(baseCold > 0,
                 "baseline storms actually forced cold boots");
    bench::check(res.digest == repeat.digest,
                 "deterministic under fixed seed (digest match)");

    // --- JSON -----------------------------------------------------

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::perror(out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"cluster_availability\",\n");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"seeds_per_cell\": %llu,\n",
                 static_cast<unsigned long long>(seeds));
    std::fprintf(f, "  \"trials\": %llu,\n",
                 static_cast<unsigned long long>(res.trials));
    std::fprintf(f, "  \"runfor_ms\": %llu,\n",
                 static_cast<unsigned long long>(runforMs));
    std::fprintf(f, "  \"arrivals_per_sec\": %.1f,\n", arrivals);
    std::fprintf(f, "  \"clients\": %u,\n", clients);
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"deterministic\": %s,\n",
                 res.digest == repeat.digest ? "true" : "false");
    std::fprintf(f,
                 "  \"lost_acked_puts\": %llu,"
                 " \"split_brain_epochs\": %llu,"
                 " \"divergent_commits\": %llu,"
                 " \"violations\": %llu,\n",
                 static_cast<unsigned long long>(res.lostAckedPuts),
                 static_cast<unsigned long long>(res.splitBrainEpochs),
                 static_cast<unsigned long long>(res.divergentCommits),
                 static_cast<unsigned long long>(res.violations));
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < res.cells.size(); ++i) {
        const fault::ClusterCellStats &c = res.cells[i];
        std::fprintf(f,
                     "    {\"replicas\": %u, \"intensity\": %u,"
                     " \"mode\": \"%s\", \"trials\": %llu,\n",
                     c.replicas, c.intensity, c.modeName.c_str(),
                     static_cast<unsigned long long>(c.trials));
        std::fprintf(f,
                     "     \"write_avail_mean\": %.6f,"
                     " \"write_avail_min\": %.6f,"
                     " \"read_avail_mean\": %.6f,"
                     " \"read_avail_min\": %.6f,\n",
                     c.writeAvailMean, c.writeAvailMin,
                     c.readAvailMean, c.readAvailMin);
        std::fprintf(f,
                     "     \"worst_write_gap_ms\": %.3f,"
                     " \"read_only_spans\": %llu,"
                     " \"cuts\": %llu,\n",
                     msOf(c.worstWriteGap),
                     static_cast<unsigned long long>(c.readOnlySpans),
                     static_cast<unsigned long long>(c.cutsInjected));
        std::fprintf(f,
                     "     \"completed\": %llu, \"failed\": %llu,"
                     " \"acked_puts\": %llu, \"redirects\": %llu,\n",
                     static_cast<unsigned long long>(c.completed),
                     static_cast<unsigned long long>(c.failed),
                     static_cast<unsigned long long>(c.ackedPuts),
                     static_cast<unsigned long long>(c.redirects));
        std::fprintf(f,
                     "     \"elections\": %llu,"
                     " \"leader_changes\": %llu,"
                     " \"step_downs\": %llu,\n",
                     static_cast<unsigned long long>(c.elections),
                     static_cast<unsigned long long>(c.leaderChanges),
                     static_cast<unsigned long long>(c.stepDowns));
        std::fprintf(f,
                     "     \"sync_deltas\": %llu,"
                     " \"sync_fulls\": %llu, \"sync_bytes\": %llu,\n",
                     static_cast<unsigned long long>(c.syncDeltas),
                     static_cast<unsigned long long>(c.syncFulls),
                     static_cast<unsigned long long>(c.syncBytes));
        std::fprintf(f,
                     "     \"resumes\": %llu, \"cold_boots\": %llu,"
                     " \"degraded_cold_boots\": %llu,\n",
                     static_cast<unsigned long long>(c.resumes),
                     static_cast<unsigned long long>(c.coldBoots),
                     static_cast<unsigned long long>(
                         c.degradedColdBoots));
        std::fprintf(f,
                     "     \"lost_acked_puts\": %llu,"
                     " \"split_brain_epochs\": %llu,"
                     " \"divergent_commits\": %llu,"
                     " \"violations\": %llu}%s\n",
                     static_cast<unsigned long long>(c.lostAckedPuts),
                     static_cast<unsigned long long>(
                         c.splitBrainEpochs),
                     static_cast<unsigned long long>(
                         c.divergentCommits),
                     static_cast<unsigned long long>(c.violations),
                     i + 1 < res.cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"digest\": \"%016llx\"\n}\n",
                 static_cast<unsigned long long>(res.digest));
    std::fclose(f);
    std::cout << "\nwrote " << out << "\n";

    return bench::result();
}
