/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench regenerates one table or figure from the paper's
 * evaluation: it runs the relevant experiment on the simulator,
 * prints the same rows/series the paper reports, cites the paper's
 * headline numbers for side-by-side comparison (EXPERIMENTS.md), and
 * asserts the qualitative orderings so the benches double as
 * regression anchors.
 */

#ifndef LIGHTPC_BENCH_COMMON_HH
#define LIGHTPC_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>

namespace bench
{

inline int failures = 0;

/** Print a bench banner. */
inline void
banner(const std::string &figure, const std::string &what)
{
    std::cout << "==============================================\n"
              << figure << ": " << what << "\n"
              << "==============================================\n";
}

/** Cite the paper's reported result for the experiment. */
inline void
paperRef(const std::string &text)
{
    std::cout << "paper: " << text << "\n";
}

/** Regression anchor: record and report a qualitative check. */
inline void
check(bool ok, const std::string &what)
{
    std::cout << (ok ? "CHECK ok   : " : "CHECK FAIL : ") << what
              << "\n";
    if (!ok)
        ++failures;
}

/** Exit status for main(): nonzero when an anchor failed. */
inline int
result()
{
    std::cout << (failures == 0 ? "\nall checks passed\n"
                                : "\nCHECK FAILURES: ")
              << (failures ? std::to_string(failures) + "\n" : "");
    return failures == 0 ? 0 : 1;
}

} // namespace bench

#endif // LIGHTPC_BENCH_COMMON_HH
