/**
 * @file
 * Service-level availability across power cycles (the paper's full
 * system persistence argument, recast as a client-visible benchmark).
 *
 * An open-loop client fleet drives a persistent KV service through
 * seeded power cuts under five persistence modes — LightPC-SnG,
 * SnG-OpLog (the persistent op-log fast path with group-commit
 * acks), SysPC, S-CheckPC, A-CheckPC. All modes share the same
 * transactional object pool, so acked-write durability must hold
 * everywhere (an invariant the fleet's ledger audits); what separates
 * them is the client-visible downtime per outage and the latency
 * tail.
 *
 *   bench_service_availability [--cuts N] [--seed S] [--out FILE]
 *       [--runfor-ms MS] [--arrivals PER_SEC] [--clients N]
 *       [--threads N|-j N]
 *
 * The five modes (plus the SnG determinism repeat) run as one suite
 * fanned across host threads (--threads 0, the default, uses them
 * all); each run owns its platform and the suite's results are
 * identical to running the modes sequentially, digests included.
 *
 * Anchors (exit nonzero on failure):
 *  - zero invariant violations in every mode: no acked-then-lost
 *    PUT, no duplicate-applied PUT;
 *  - SnG commits its EP-cut inside the hold-up on every cut (no cold
 *    boots) and its per-cut attributable downtime is below every
 *    checkpoint baseline's best outage;
 *  - SnG-OpLog holds the same no-cold-boot/downtime anchors while
 *    its acked writes ride the log (appends, group commits, drains
 *    and replays all nonzero, acked => durable audited);
 *  - the whole run is deterministic under a fixed seed (SnG is run
 *    twice and the digests must match).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "net/service_plane.hh"
#include "sim/parallel.hh"
#include "stats/table.hh"

using namespace lightpc;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--cuts N] [--seed S] [--out FILE]"
                 " [--runfor-ms MS] [--arrivals PER_SEC]"
                 " [--clients N] [--threads N|-j N]\n",
                 argv0);
    return 2;
}

double
msOf(Tick t)
{
    return t == maxTick
        ? -1.0
        : static_cast<double>(t) / static_cast<double>(tickMs);
}

/** Smallest attributable downtime across a run's closed outages. */
Tick
bestAttributable(const net::ServiceResult &r)
{
    Tick best = maxTick;
    for (const net::ServiceOutage &o : r.outages)
        best = std::min(best, o.attributable);
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t cuts = 3;
    std::uint64_t seed = 42;
    std::uint64_t runforMs = 8000;
    double arrivals = 4000.0;
    std::uint32_t clients = 2000;
    unsigned threads = 0;
    std::string out = "BENCH_service.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                std::exit(usage(argv[0]));
            return argv[++i];
        };
        if (arg == "--cuts")
            cuts = static_cast<std::uint32_t>(
                std::strtoull(value(), nullptr, 10));
        else if (arg == "--seed")
            seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--out")
            out = value();
        else if (arg == "--runfor-ms")
            runforMs = std::strtoull(value(), nullptr, 10);
        else if (arg == "--arrivals")
            arrivals = std::strtod(value(), nullptr);
        else if (arg == "--clients")
            clients = static_cast<std::uint32_t>(
                std::strtoull(value(), nullptr, 10));
        else if (arg == "--threads" || arg == "-j")
            threads = sim::parseThreadsArg(value());
        else
            return usage(argv[0]);
    }
    if (cuts == 0 || runforMs == 0 || arrivals <= 0.0 || clients == 0)
        return usage(argv[0]);
    threads = sim::resolveThreads(threads);

    bench::banner("Service availability",
                  "client-visible downtime of a persistent KV service"
                  " across power cycles");
    bench::paperRef("full system persistence keeps services available"
                    " through power loss at memory-bus speed, while"
                    " checkpoint baselines pay seconds per outage"
                    " (Sections V-VI)");

    auto configFor = [&](net::PersistMode mode) {
        net::ServiceConfig cfg;
        cfg.mode = mode;
        cfg.cuts = cuts;
        cfg.seed = seed;
        cfg.runFor = runforMs * tickMs;
        cfg.fleet.arrivalsPerSec = arrivals;
        cfg.fleet.clients = clients;
        return cfg;
    };

    const net::PersistMode modes[] = {
        net::PersistMode::SnG,
        net::PersistMode::OpLog,
        net::PersistMode::SysPc,
        net::PersistMode::SCheckPc,
        net::PersistMode::ACheckPc,
    };

    // One suite: the five modes plus the SnG determinism repeat,
    // fanned across the trial pool.
    std::vector<net::ServiceConfig> suite;
    for (const net::PersistMode mode : modes) {
        std::cout << "queueing " << net::persistModeName(mode)
                  << "...\n";
        suite.push_back(configFor(mode));
    }
    std::cout << "queueing "
              << net::persistModeName(net::PersistMode::SnG)
              << " again (determinism)...\n";
    suite.push_back(configFor(net::PersistMode::SnG));

    std::cout << "running the suite on " << threads
              << " thread(s)...\n\n";
    std::vector<net::ServiceResult> results =
        net::runServiceSuite(suite, threads);
    const net::ServiceResult sngRepeat = results.back();
    results.pop_back();
    const net::ServiceResult &sng = results[0];
    const net::ServiceResult &oplog = results[1];

    stats::Table table({"mode", "completed", "failed", "goodput/s",
                        "p99 ms", "p999 ms", "worst outage ms",
                        "attributable ms", "cold boots"});
    for (const net::ServiceResult &r : results) {
        char p99[32], p999[32], down[32], attr[32], goodput[32];
        std::snprintf(goodput, sizeof(goodput), "%.0f",
                      r.goodputMean);
        std::snprintf(p99, sizeof(p99), "%.2f", r.p99Us / 1000.0);
        std::snprintf(p999, sizeof(p999), "%.2f", r.p999Us / 1000.0);
        std::snprintf(down, sizeof(down), "%.2f",
                      msOf(r.worstDowntime));
        std::snprintf(attr, sizeof(attr), "%.2f",
                      msOf(r.worstAttributable));
        table.addRow({r.modeName, std::to_string(r.completed),
                      std::to_string(r.failed), goodput, p99, p999,
                      down, attr, std::to_string(r.coldBoots)});
    }
    table.print(std::cout);

    std::cout << "\nSnG stop+go total: "
              << msOf(sng.stopTicksTotal + sng.goTicksTotal)
              << " ms over " << cuts << " cuts, ring frames"
              << " resurrected: " << sng.ringPreservedFrames << "\n";
    for (const net::ServiceResult &r : results)
        for (const std::string &note : r.violations)
            std::cout << "  VIOLATION [" << r.modeName << "] " << note
                      << "\n";

    // --- anchors --------------------------------------------------

    for (const net::ServiceResult &r : results) {
        bench::check(r.violations.empty(),
                     r.modeName + ": zero invariant violations");
        bench::check(r.lostAckedPuts == 0,
                     r.modeName + ": no acked-then-lost PUT");
        bench::check(r.duplicateApplied == 0,
                     r.modeName + ": no duplicate-applied PUT");
        bench::check(r.outages.size() == cuts,
                     r.modeName + ": every cut produced an outage"
                     " record");
        bool closed = true;
        for (const net::ServiceOutage &o : r.outages)
            closed = closed && o.downtime != maxTick;
        bench::check(closed,
                     r.modeName + ": service recovered after every"
                     " outage");
        bench::check(r.completed > 0 && r.ackedPuts > 0,
                     r.modeName + ": fleet completed work and acked"
                     " PUTs");
    }

    bench::check(sng.coldBoots == 0,
                 "SnG: EP-cut committed inside the hold-up on every"
                 " cut");
    bench::check(sng.contextImagesSaved >= cuts
                     && sng.contextImagesRestored >= cuts,
                 "SnG: NIC ring context dumped and resurrected on"
                 " every cycle");
    bench::check(sng.ringPreservedFrames >= cuts,
                 "SnG: queued frames rode the DCB through every"
                 " power cycle");
    bench::check(oplog.coldBoots == 0,
                 "SnG-OpLog: EP-cut committed inside the hold-up on"
                 " every cut");
    bench::check(oplog.logAppends > 0 && oplog.logCommits > 0
                     && oplog.logDrainApplied > 0,
                 "SnG-OpLog: PUTs rode the log (appends, group"
                 " commits, drains all nonzero)");
    bench::check(oplog.logAppends
                     >= oplog.logDrainApplied + oplog.logReplayApplied,
                 "SnG-OpLog: records applied never exceed records"
                 " appended");
    for (std::size_t i = 2; i < results.size(); ++i) {
        const net::ServiceResult &base = results[i];
        bench::check(sng.worstAttributable < bestAttributable(base),
                     "SnG worst attributable downtime below "
                         + base.modeName + "'s best outage");
        bench::check(oplog.worstAttributable < bestAttributable(base),
                     "SnG-OpLog worst attributable downtime below "
                         + base.modeName + "'s best outage");
        bench::check(sng.p999Us < base.p999Us,
                     "SnG p999 latency below " + base.modeName
                         + "'s");
        bench::check(oplog.p999Us < base.p999Us,
                     "SnG-OpLog p999 latency below " + base.modeName
                         + "'s");
        bench::check(base.coldBoots == cuts,
                     base.modeName + ": every outage cost a cold"
                     " boot");
    }
    // Attributable downtime ≈ stop + go + queue-drain slack; 100 ms
    // of slack still leaves an order of magnitude to the baselines'
    // 1.5 s cold reboot.
    bench::check(sng.worstAttributable
                     < (sng.stopTicksTotal + sng.goTicksTotal) / cuts
                           + 100 * tickMs,
                 "SnG attributable downtime within stop+go budget");
    bench::check(sng.digest == sngRepeat.digest,
                 "deterministic under fixed seed (digest match)");

    // --- JSON -----------------------------------------------------

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::perror(out.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"service_availability\",\n");
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"cuts\": %u,\n", cuts);
    std::fprintf(f, "  \"runfor_ms\": %llu,\n",
                 static_cast<unsigned long long>(runforMs));
    std::fprintf(f, "  \"arrivals_per_sec\": %.1f,\n", arrivals);
    std::fprintf(f, "  \"clients\": %u,\n", clients);
    std::fprintf(f, "  \"threads\": %u,\n", threads);
    std::fprintf(f, "  \"deterministic\": %s,\n",
                 sng.digest == sngRepeat.digest ? "true" : "false");
    std::fprintf(f, "  \"modes\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const net::ServiceResult &r = results[i];
        std::fprintf(f, "    {\"mode\": \"%s\",\n",
                     r.modeName.c_str());
        std::fprintf(f,
                     "     \"arrivals\": %llu, \"completed\": %llu,"
                     " \"failed\": %llu, \"retries\": %llu,\n",
                     static_cast<unsigned long long>(r.arrivals),
                     static_cast<unsigned long long>(r.completed),
                     static_cast<unsigned long long>(r.failed),
                     static_cast<unsigned long long>(r.retries));
        std::fprintf(f,
                     "     \"acked_puts\": %llu,"
                     " \"puts_applied\": %llu,"
                     " \"idempotent_hits\": %llu,"
                     " \"rejected\": %llu,\n",
                     static_cast<unsigned long long>(r.ackedPuts),
                     static_cast<unsigned long long>(r.putsApplied),
                     static_cast<unsigned long long>(
                         r.idempotentHits),
                     static_cast<unsigned long long>(r.rejected));
        std::fprintf(f,
                     "     \"goodput_mean\": %.1f,"
                     " \"latency_mean_us\": %.2f,"
                     " \"p50_us\": %.2f, \"p99_us\": %.2f,"
                     " \"p999_us\": %.2f,\n",
                     r.goodputMean, r.meanUs, r.p50Us, r.p99Us,
                     r.p999Us);
        std::fprintf(f,
                     "     \"cold_boots\": %llu,"
                     " \"ring_preserved_frames\": %llu,"
                     " \"ring_frames_lost\": %llu,"
                     " \"stop_ms_total\": %.3f,"
                     " \"go_ms_total\": %.3f,\n",
                     static_cast<unsigned long long>(r.coldBoots),
                     static_cast<unsigned long long>(
                         r.ringPreservedFrames),
                     static_cast<unsigned long long>(
                         r.ringFramesLost),
                     msOf(r.stopTicksTotal), msOf(r.goTicksTotal));
        std::fprintf(f,
                     "     \"log_appends\": %llu,"
                     " \"log_commits\": %llu,"
                     " \"log_drain_applied\": %llu,"
                     " \"log_replay_applied\": %llu,"
                     " \"log_stall_drains\": %llu,\n",
                     static_cast<unsigned long long>(r.logAppends),
                     static_cast<unsigned long long>(r.logCommits),
                     static_cast<unsigned long long>(
                         r.logDrainApplied),
                     static_cast<unsigned long long>(
                         r.logReplayApplied),
                     static_cast<unsigned long long>(
                         r.logStallDrains));
        std::fprintf(f,
                     "     \"dedup_compactions\": %llu,"
                     " \"dedup_evicted\": %llu,\n",
                     static_cast<unsigned long long>(
                         r.dedupCompactions),
                     static_cast<unsigned long long>(r.dedupEvicted));
        std::fprintf(f,
                     "     \"lost_acked_puts\": %llu,"
                     " \"duplicate_applied\": %llu,"
                     " \"violations\": %llu,"
                     " \"digest\": \"%016llx\",\n",
                     static_cast<unsigned long long>(
                         r.lostAckedPuts),
                     static_cast<unsigned long long>(
                         r.duplicateApplied),
                     static_cast<unsigned long long>(
                         r.violations.size()),
                     static_cast<unsigned long long>(r.digest));
        std::fprintf(f, "     \"outages\": [");
        for (std::size_t k = 0; k < r.outages.size(); ++k) {
            const net::ServiceOutage &o = r.outages[k];
            std::fprintf(f,
                         "%s\n      {\"event_ms\": %.2f,"
                         " \"downtime_ms\": %.3f,"
                         " \"attributable_ms\": %.3f,"
                         " \"cold_boot\": %s}",
                         k ? "," : "", msOf(o.eventAt),
                         msOf(o.downtime), msOf(o.attributable),
                         o.coldBoot ? "true" : "false");
        }
        std::fprintf(f, "]}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::cout << "\nwrote " << out << "\n";

    return bench::result();
}
