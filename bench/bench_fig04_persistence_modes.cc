/**
 * @file
 * Fig. 4 — Performance and power of conventional PMEM persistence
 * control.
 *
 * Runs all 17 Table II workloads under the five configurations
 * (DRAM-only, mem-mode, app-mode, object-mode, trans-mode) and
 * reports execution latency normalized to DRAM-only plus the
 * memory-subsystem power, as the paper measures with LIKWID.
 *
 * Paper headlines: mem-mode within 1.3% of DRAM-only; app-mode +28%
 * latency / +47% power over mem-mode; object-mode 1.8x / 1.6x;
 * trans-mode 8.7x latency vs DRAM-only.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "platform/pmem_modes.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workload/spec.hh"

using namespace lightpc;
using namespace lightpc::platform;

int
main()
{
    bench::banner("Fig. 4", "persistence-control latency and power"
                            " across PMEM modes");

    constexpr std::uint64_t scale = 40000;
    const PmemMode modes[] = {PmemMode::DramOnly, PmemMode::MemMode,
                              PmemMode::AppMode, PmemMode::ObjectMode,
                              PmemMode::TransMode};

    stats::Table latency({"workload", "DRAM-only(Mc)", "mem", "app",
                          "object", "trans"});
    stats::Table power({"workload", "DRAM-only(W)", "mem", "app",
                        "object", "trans"});

    std::vector<double> norm_mem, norm_app, norm_obj, norm_trans;
    std::vector<double> pw_dram, pw_mem, pw_app, pw_obj, pw_trans;

    for (const auto &spec : workload::tableTwo()) {
        double base_cycles = 0.0;
        std::vector<std::string> lat_row{spec.name};
        std::vector<std::string> pow_row{spec.name};
        for (const PmemMode mode : modes) {
            const auto result = runPmemMode(mode, spec, scale);
            const double mc =
                static_cast<double>(result.run.cycles) / 1e6;
            if (mode == PmemMode::DramOnly) {
                base_cycles = mc;
                lat_row.push_back(stats::Table::num(mc, 1));
                pow_row.push_back(
                    stats::Table::num(result.memWatts, 2));
                pw_dram.push_back(result.memWatts);
                continue;
            }
            const double norm = mc / base_cycles;
            lat_row.push_back(stats::Table::ratio(norm));
            pow_row.push_back(stats::Table::num(result.memWatts, 2));
            switch (mode) {
              case PmemMode::MemMode:
                norm_mem.push_back(norm);
                pw_mem.push_back(result.memWatts);
                break;
              case PmemMode::AppMode:
                norm_app.push_back(norm);
                pw_app.push_back(result.memWatts);
                break;
              case PmemMode::ObjectMode:
                norm_obj.push_back(norm);
                pw_obj.push_back(result.memWatts);
                break;
              default:
                norm_trans.push_back(norm);
                pw_trans.push_back(result.memWatts);
            }
        }
        latency.addRow(lat_row);
        power.addRow(pow_row);
    }

    std::cout << "(a) execution latency, normalized to DRAM-only\n";
    latency.print(std::cout);
    std::cout << "\n(b) memory subsystem power\n";
    power.print(std::cout);

    const double avg_mem = stats::geomean(norm_mem);
    const double avg_app = stats::geomean(norm_app);
    const double avg_obj = stats::geomean(norm_obj);
    const double avg_trans = stats::geomean(norm_trans);
    auto avg = [](const std::vector<double> &v) {
        stats::Summary s;
        for (double x : v)
            s.add(x);
        return s.mean();
    };
    std::cout << "\naverage latency vs DRAM-only:  mem "
              << stats::Table::ratio(avg_mem) << "  app "
              << stats::Table::ratio(avg_app) << "  object "
              << stats::Table::ratio(avg_obj) << "  trans "
              << stats::Table::ratio(avg_trans) << "\n"
              << "average memory power (W):      dram "
              << stats::Table::num(avg(pw_dram)) << "  mem "
              << stats::Table::num(avg(pw_mem)) << "  app "
              << stats::Table::num(avg(pw_app)) << "  object "
              << stats::Table::num(avg(pw_obj)) << "  trans "
              << stats::Table::num(avg(pw_trans)) << "\n\n";

    bench::paperRef("mem-mode ~= DRAM-only (1.3%); app-mode +28%"
                    " latency/+47% power vs mem-mode; object-mode"
                    " 1.8x/1.6x; trans-mode 8.7x latency vs"
                    " DRAM-only");

    bench::check(avg_mem < 1.10,
                 "mem-mode tracks DRAM-only latency");
    bench::check(avg_app > 1.05 && avg_app < 2.0,
                 "app-mode pays a moderate latency penalty");
    bench::check(avg_app > avg_mem,
                 "app-mode is slower than mem-mode");
    bench::check(avg_obj > 1.3 * avg_mem,
                 "object-mode pays pointer-swizzling overheads");
    bench::check(avg_trans > 4.0,
                 "trans-mode is several times DRAM-only");
    bench::check(avg(pw_app) > 1.2 * avg(pw_mem),
                 "app-mode burns more memory power than mem-mode");
    bench::check(avg(pw_obj) > avg(pw_dram),
                 "object-mode burns more memory power than"
                 " DRAM-only");
    return bench::result();
}
