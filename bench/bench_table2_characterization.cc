/**
 * @file
 * Table II — Benchmark characterization.
 *
 * Replays every synthetic workload on the LightPC platform and
 * measures what the paper's table reports: memory-level read/write
 * request counts (scaled), the read/write ratio, and the D$ hit
 * rates — validating that the generators actually produce the
 * published traffic, not just intend to.
 */

#include <iostream>

#include "bench_common.hh"
#include "platform/system.hh"
#include "stats/table.hh"
#include "workload/spec.hh"

using namespace lightpc;
using namespace lightpc::platform;

int
main()
{
    bench::banner("Table II", "benchmark characterization replay");

    constexpr std::uint64_t scale = 12000;
    stats::Table table({"workload", "category", "memR(#)", "memW(#)",
                        "R/W", "R/W(paper)", "D$r", "D$r(paper)",
                        "D$w", "D$w(paper)", "MT"});

    int hit_rate_misses = 0;
    int ratio_misses = 0;
    for (const auto &spec : workload::tableTwo()) {
        SystemConfig config;
        config.kind = PlatformKind::LightPC;
        config.scaleDivisor = scale;
        System system(config);
        const auto result = system.run(spec);

        // Memory-level requests measured at the PSM, extrapolated
        // back to paper scale.
        const double mem_reads = static_cast<double>(
            result.psmStats.reads * scale);
        const double mem_writes = static_cast<double>(
            result.psmStats.writes * scale);
        const double ratio = mem_writes > 0.0
            ? mem_reads / mem_writes : 0.0;

        if (std::abs(result.loadHitRate - spec.readHitRate) > 0.05
            || std::abs(result.storeHitRate - spec.writeHitRate)
                > 0.05)
            ++hit_rate_misses;
        if (ratio < spec.rwRatio() * 0.6
            || ratio > spec.rwRatio() * 1.7)
            ++ratio_misses;

        auto millions = [](double v) {
            return stats::Table::num(v / 1e6, 0) + "M";
        };
        table.addRow(
            {spec.name, categoryName(spec.category),
             millions(mem_reads), millions(mem_writes),
             stats::Table::num(ratio, 1),
             stats::Table::num(spec.rwRatio(), 1),
             stats::Table::percent(result.loadHitRate, 1),
             stats::Table::percent(spec.readHitRate, 1),
             stats::Table::percent(result.storeHitRate, 1),
             stats::Table::percent(spec.writeHitRate, 1),
             spec.multithread ? "yes" : ""});
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperRef("Table II: per-workload memory reads/writes,"
                    " R/W ratios 2.6-345, D$ hit rates 54-99.9%,"
                    " HPC and in-memory DB multithreaded");

    bench::check(hit_rate_misses == 0,
                 "measured D$ hit rates within 5pp of Table II for"
                 " every workload");
    bench::check(ratio_misses <= 2,
                 "memory-level R/W ratios track Table II");
    return bench::result();
}
