/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace
{

using namespace lightpc;

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); },
                EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(2); },
                EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::PowerEvent);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, RunWithLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsScheduledExactlyAtLimitExecute)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(50, [&] { fired = true; });
    eq.run(50);
    EXPECT_TRUE(fired);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 5)
            eq.scheduleIn(10, step);
    };
    eq.schedule(0, step);
    eq.run();
    EXPECT_EQ(chain, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(10, [&] { fired = true; });
    eq.deschedule(id);
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleIsIdempotentAndIgnoresInvalid)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.deschedule(invalidEventId);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(eq.size(), 0u);
}

TEST(Ticks, ClockDomainConversions)
{
    ClockDomain clk(1600);  // 1.6 GHz -> 625 ps
    EXPECT_EQ(clk.period(), 625u);
    EXPECT_EQ(clk.toTicks(1000), 625'000u);
    EXPECT_EQ(clk.toCycles(625'000), 1000u);
    EXPECT_EQ(clk.toCycles(1), 1u);  // rounds up
}

TEST(Ticks, UnitConstants)
{
    EXPECT_EQ(tickNs, 1000u);
    EXPECT_EQ(tickMs, 1'000'000'000u);
    EXPECT_DOUBLE_EQ(ticksToMs(16 * tickMs), 16.0);
}

} // namespace
