/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/rng.hh"
#include "sim/ticks.hh"

namespace
{

using namespace lightpc;

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); },
                EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(2); },
                EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::PowerEvent);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, RunWithLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsScheduledExactlyAtLimitExecute)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(50, [&] { fired = true; });
    eq.run(50);
    EXPECT_TRUE(fired);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 5)
            eq.scheduleIn(10, step);
    };
    eq.schedule(0, step);
    eq.run();
    EXPECT_EQ(chain, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool fired = false;
    const EventId id = eq.schedule(10, [&] { fired = true; });
    eq.deschedule(id);
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleIsIdempotentAndIgnoresInvalid)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.deschedule(invalidEventId);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, DescheduledClosureIsDestroyedEagerly)
{
    EventQueue eq;
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    const EventId id = eq.schedule(10, [token] {});
    token.reset();
    EXPECT_FALSE(watch.expired());
    eq.deschedule(id);
    // The capture must die at cancellation, not when time reaches 10.
    EXPECT_TRUE(watch.expired());
    eq.run();
}

/**
 * Regression for the stale-entry leak: a million cancelled events
 * must not accumulate ordering entries or pool slabs. The original
 * kernel kept one heap entry per cancelled event until its tick was
 * reached; the sweep must keep pendingEntries() proportional to the
 * live count, not to the cancellation history.
 */
TEST(EventQueue, ScheduleCancelChurnKeepsMemoryBounded)
{
    EventQueue eq;
    Tick t = 0;
    std::size_t max_pending = 0;
    for (int i = 0; i < 1'000'000; ++i) {
        t += 10;
        const EventId id = eq.schedule(t + 100'000, [] {});
        eq.deschedule(id);
        if (i % 4 == 0) {
            eq.schedule(t, [] {});
            eq.step();
        }
        max_pending = std::max(max_pending, eq.pendingEntries());
    }
    // Live count never exceeds 2 here; the sweep threshold allows a
    // backlog of max(pruneFloor, 2x live) stale entries plus slack.
    EXPECT_LT(max_pending, 1024u);
    EXPECT_LT(eq.pendingEntries(), 1024u);
    // One slab (256 records) is plenty for two in-flight events.
    EXPECT_LE(eq.poolCapacity(), 512u);
}

/**
 * The pooled kernel must preserve the legacy kernel's observable
 * semantics exactly: identical schedule/cancel/run sequences fire in
 * identical (tick, priority, FIFO) order.
 */
TEST(EventQueue, FiringOrderMatchesLegacyKernelUnderFuzz)
{
    constexpr EventPriority prios[] = {
        EventPriority::PowerEvent, EventPriority::Interrupt,
        EventPriority::Default, EventPriority::Stats};

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        EventQueue pooled;
        LegacyEventQueue legacy;
        std::vector<int> pooled_order, legacy_order;
        std::vector<EventId> pooled_ids;
        std::vector<LegacyEventId> legacy_ids;
        Rng rng(seed);

        for (int op = 0; op < 4000; ++op) {
            const auto roll = rng.below(100);
            if (roll < 60) {
                // Schedule far enough out that both queues accept it;
                // now() advances identically on both sides.
                const Tick when =
                    pooled.now() + rng.below(300'000);
                const auto prio = prios[rng.below(4)];
                pooled_ids.push_back(pooled.schedule(
                    when, [&pooled_order, op] {
                        pooled_order.push_back(op);
                    },
                    prio));
                legacy_ids.push_back(legacy.schedule(
                    when,
                    [&legacy_order, op] {
                        legacy_order.push_back(op);
                    },
                    static_cast<int>(prio)));
            } else if (roll < 80 && !pooled_ids.empty()) {
                const auto victim = rng.below(pooled_ids.size());
                pooled.deschedule(pooled_ids[victim]);
                legacy.deschedule(legacy_ids[victim]);
            } else {
                const Tick limit = pooled.now() + rng.below(50'000);
                pooled.run(limit);
                legacy.run(limit);
                ASSERT_EQ(pooled.now(), legacy.now());
            }
        }
        pooled.run();
        legacy.run();
        ASSERT_EQ(pooled_order, legacy_order)
            << "firing order diverged for seed " << seed;
        EXPECT_EQ(pooled.now(), legacy.now());
    }
}

TEST(Ticks, ClockDomainConversions)
{
    ClockDomain clk(1600);  // 1.6 GHz -> 625 ps
    EXPECT_EQ(clk.period(), 625u);
    EXPECT_EQ(clk.toTicks(1000), 625'000u);
    EXPECT_EQ(clk.toCycles(625'000), 1000u);
    EXPECT_EQ(clk.toCycles(1), 1u);  // rounds up
}

TEST(Ticks, UnitConstants)
{
    EXPECT_EQ(tickNs, 1000u);
    EXPECT_EQ(tickMs, 1'000'000'000u);
    EXPECT_DOUBLE_EQ(ticksToMs(16 * tickMs), 16.0);
}

} // namespace
