/**
 * @file
 * Tests for GF(2^8) arithmetic and the symbol-based erasure code.
 */

#include <gtest/gtest.h>

#include "psm/gf256.hh"
#include "psm/symbol_ecc.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::psm;

TEST(Gf256, AdditionIsXor)
{
    EXPECT_EQ(gf256::add(0x57, 0x83), 0x57 ^ 0x83);
    EXPECT_EQ(gf256::add(0xff, 0xff), 0);
}

/** Carry-less multiply with polynomial reduction: the ground truth
 *  the table-driven arithmetic is checked against. */
std::uint8_t
slowMul(std::uint8_t a, std::uint8_t b)
{
    std::uint16_t acc = 0;
    std::uint16_t aa = a;
    for (int i = 0; i < 8; ++i) {
        if (b & (1 << i))
            acc ^= aa << i;
    }
    for (int i = 15; i >= 8; --i)
        if (acc & (1 << i))
            acc ^= 0x11d << (i - 8);
    return static_cast<std::uint8_t>(acc);
}

TEST(Gf256, KnownProduct)
{
    // The classic AES example: 0x57 * 0x83 = 0xc1 under 0x11d...
    // verify against the slow bitwise multiply instead of a constant.
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.next());
        const auto b = static_cast<std::uint8_t>(rng.next());
        ASSERT_EQ(gf256::mul(a, b), slowMul(a, b));
    }
}

TEST(Gf256, ExhaustiveMulMatchesCarrylessMultiply)
{
    // All 65536 products: the log/exp tables and the slow reduction
    // must agree everywhere, including both zero operands.
    for (int a = 0; a < 256; ++a)
        for (int b = 0; b < 256; ++b)
            ASSERT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(b)),
                      slowMul(static_cast<std::uint8_t>(a),
                              static_cast<std::uint8_t>(b)))
                << "a=" << a << " b=" << b;
}

TEST(Gf256, PowWithZeroExponentIsOne)
{
    // x^0 = 1 for every base, including 0 (empty product).
    for (int x = 0; x < 256; ++x)
        ASSERT_EQ(gf256::pow(static_cast<std::uint8_t>(x), 0), 1);
}

TEST(Gf256, MulRowMatchesScalarMultiply)
{
    std::uint8_t row[256];
    for (int c = 0; c < 256; ++c) {
        gf256::mulRow(static_cast<std::uint8_t>(c), row);
        for (int x = 0; x < 256; ++x)
            ASSERT_EQ(row[x],
                      gf256::mul(static_cast<std::uint8_t>(c),
                                 static_cast<std::uint8_t>(x)))
                << "c=" << c << " x=" << x;
    }
}

TEST(Gf256, MultiplicationByZeroAndOne)
{
    for (int a = 0; a < 256; ++a) {
        EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
        EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 1), a);
    }
}

TEST(Gf256, InverseRoundTrip)
{
    for (int a = 1; a < 256; ++a) {
        const auto inv = gf256::inv(static_cast<std::uint8_t>(a));
        EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), inv), 1);
    }
}

TEST(Gf256, DivisionInvertsMultiplication)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const auto a = static_cast<std::uint8_t>(rng.next());
        const auto b =
            static_cast<std::uint8_t>(rng.between(1, 255));
        EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
    }
}

TEST(SymbolEcc, EncodeDecodeNoErasures)
{
    SymbolEcc code(8, 2);
    Rng rng(3);
    std::vector<std::uint8_t> data(8);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    const auto codeword = code.encode(data);
    EXPECT_EQ(codeword.size(), 10u);

    std::vector<std::uint8_t> out;
    EXPECT_TRUE(code.decode(codeword, std::vector<bool>(10, false),
                            out));
    EXPECT_EQ(out, data);
}

TEST(SymbolEcc, RecoversUpToParityErasures)
{
    SymbolEcc code(8, 2);
    Rng rng(4);
    std::vector<std::uint8_t> data(8);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    auto codeword = code.encode(data);

    // Erase any two symbols.
    std::vector<bool> erased(10, false);
    erased[3] = erased[9] = true;
    codeword[3] = 0xaa;
    codeword[9] = 0x55;

    std::vector<std::uint8_t> out;
    ASSERT_TRUE(code.decode(codeword, erased, out));
    EXPECT_EQ(out, data);
}

TEST(SymbolEcc, FailsBeyondParityBudget)
{
    SymbolEcc code(4, 2);
    std::vector<std::uint8_t> data{1, 2, 3, 4};
    const auto codeword = code.encode(data);
    std::vector<bool> erased(6, false);
    erased[0] = erased[1] = erased[2] = true;  // 3 > r = 2
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(code.decode(codeword, erased, out));
}

TEST(SymbolEcc, LaneInterface)
{
    SymbolEcc code(4, 2);
    Rng rng(5);
    std::vector<std::uint8_t> lanes(4 * 32);
    for (auto &b : lanes)
        b = static_cast<std::uint8_t>(rng.next());
    auto coded = code.encodeLanes(lanes, 32);
    EXPECT_EQ(coded.size(), 6u * 32);

    // Kill two whole lanes (devices).
    std::vector<bool> erased(6, false);
    erased[1] = erased[4] = true;
    for (int b = 0; b < 32; ++b) {
        coded[1 * 32 + b] = 0xde;
        coded[4 * 32 + b] = 0xad;
    }
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(code.decodeLanes(coded, 32, erased, out));
    EXPECT_EQ(out, lanes);
}

TEST(SymbolEcc, EncodeIntoMatchesEncode)
{
    SymbolEcc code(12, 4);
    Rng rng(7);
    std::vector<std::uint8_t> data(12);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    const auto codeword = code.encode(data);

    std::vector<std::uint8_t> buffer(16);
    code.encodeInto(data.data(), buffer.data());
    EXPECT_EQ(buffer, codeword);
}

/** Round-trips at exactly the correctable limit, one erasure past it
 *  fails — for every contiguous erasure window. */
TEST(SymbolEcc, MaxErasureBudgetIsExact)
{
    constexpr unsigned k = 8, r = 4;
    SymbolEcc code(k, r);
    Rng rng(8);
    std::vector<std::uint8_t> data(k);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    const auto clean = code.encode(data);

    for (unsigned start = 0; start + r <= k + r; ++start) {
        // Exactly r contiguous erasures: must recover.
        auto codeword = clean;
        std::vector<bool> erased(k + r, false);
        for (unsigned i = start; i < start + r; ++i) {
            erased[i] = true;
            codeword[i] = static_cast<std::uint8_t>(rng.next());
        }
        std::vector<std::uint8_t> out;
        ASSERT_TRUE(code.decode(codeword, erased, out))
            << "window at " << start;
        EXPECT_EQ(out, data) << "window at " << start;

        // One more erasure exceeds the budget: must refuse.
        if (start + r < k + r) {
            erased[start + r] = true;
            EXPECT_FALSE(code.decode(codeword, erased, out))
                << "window at " << start;
        }
    }
}

TEST(SymbolEcc, LaneDecodeAtMaxErasures)
{
    constexpr unsigned k = 4, r = 3;
    SymbolEcc code(k, r);
    Rng rng(9);
    std::vector<std::uint8_t> lanes(k * 16);
    for (auto &b : lanes)
        b = static_cast<std::uint8_t>(rng.next());
    auto coded = code.encodeLanes(lanes, 16);

    // Kill r whole lanes — the chipkill ceiling.
    std::vector<bool> erased(k + r, false);
    for (unsigned lane : {0u, 2u, 5u}) {
        erased[lane] = true;
        for (int b = 0; b < 16; ++b)
            coded[lane * 16 + b] = static_cast<std::uint8_t>(
                rng.next());
    }
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(code.decodeLanes(coded, 16, erased, out));
    EXPECT_EQ(out, lanes);

    // A fourth dead lane is unrecoverable.
    erased[6] = true;
    EXPECT_FALSE(code.decodeLanes(coded, 16, erased, out));
}

TEST(SymbolEcc, RejectsBadGeometry)
{
    EXPECT_THROW(SymbolEcc(0, 2), FatalError);
    EXPECT_THROW(SymbolEcc(2, 0), FatalError);
    EXPECT_THROW(SymbolEcc(200, 60), FatalError);
}

/** Property sweep: random (k, r), random erasure sets up to r. */
struct EccCase
{
    unsigned k;
    unsigned r;
    std::uint64_t seed;
};

class SymbolEccProperty : public ::testing::TestWithParam<EccCase>
{
};

TEST_P(SymbolEccProperty, MdsRecovery)
{
    const EccCase c = GetParam();
    SymbolEcc code(c.k, c.r);
    Rng rng(c.seed);
    std::vector<std::uint8_t> data(c.k);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    auto codeword = code.encode(data);

    // Erase exactly r random distinct positions.
    std::vector<bool> erased(c.k + c.r, false);
    unsigned erased_count = 0;
    while (erased_count < c.r) {
        const auto pos = rng.below(c.k + c.r);
        if (!erased[pos]) {
            erased[pos] = true;
            codeword[pos] = static_cast<std::uint8_t>(rng.next());
            ++erased_count;
        }
    }
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(code.decode(codeword, erased, out));
    EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SymbolEccProperty,
    ::testing::Values(EccCase{2, 1, 1}, EccCase{4, 2, 2},
                      EccCase{8, 2, 3}, EccCase{8, 4, 4},
                      EccCase{16, 2, 5}, EccCase{16, 8, 6},
                      EccCase{12, 4, 7}, EccCase{10, 6, 8},
                      EccCase{32, 4, 9}, EccCase{24, 8, 10}));

} // namespace
