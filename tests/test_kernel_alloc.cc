/**
 * @file
 * Zero-allocation guarantees for the simulation kernel's hot paths.
 *
 * The global operator new/delete overrides below count every heap
 * allocation made by this test binary. Each test drives a kernel
 * workload long enough to reach steady state (slabs grown, every
 * calendar bucket's vector at capacity), then asserts that a further
 * measured run performs exactly zero allocations. A regression that
 * reintroduces per-event malloc — a std::function capture, a
 * per-request new, a container grown on the hot path — fails these
 * tests deterministically, without timing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "mem/request.hh"
#include "sim/event_queue.hh"

namespace
{

// Atomic because the override counts every allocation in the whole
// test binary, including ones made on ParallelExecutor workers in
// other test files. The allocation-free assertions below are all
// single-threaded, so relaxed counting is exact where it matters.
std::atomic<std::uint64_t> g_newCalls{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using namespace lightpc;

/**
 * Enough churn iterations at +10 ticks/event to cycle the calendar
 * ring (256 buckets x 4096 ticks) several times, so every bucket
 * vector has grown to its steady capacity.
 */
constexpr std::uint64_t warmupEvents = 400'000;
constexpr std::uint64_t measuredEvents = 200'000;

TEST(KernelAlloc, EventQueueChurnIsAllocationFree)
{
    EventQueue eq;
    Tick t = eq.now();
    auto churn = [&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i) {
            t += 10;
            eq.schedule(t, [] {});
            eq.step();
        }
    };
    churn(warmupEvents);

    const std::uint64_t before = g_newCalls;
    churn(measuredEvents);
    EXPECT_EQ(g_newCalls - before, 0u);
}

TEST(KernelAlloc, EventQueueCapture32ChurnIsAllocationFree)
{
    EventQueue eq;
    Tick t = eq.now();
    std::uint64_t sink[4] = {1, 2, 3, 4};
    volatile std::uint64_t out = 0;
    auto churn = [&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i) {
            t += 10;
            eq.schedule(t, [sink, &out] { out = sink[0]; });
            eq.step();
        }
    };
    churn(warmupEvents);

    const std::uint64_t before = g_newCalls;
    churn(measuredEvents);
    EXPECT_EQ(g_newCalls - before, 0u);
}

TEST(KernelAlloc, EventQueueScheduleCancelIsAllocationFree)
{
    EventQueue eq;
    Tick t = eq.now();
    auto churn = [&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; ++i) {
            t += 10;
            eq.schedule(t, [] {});
            const EventId doomed = eq.schedule(t + 5, [] {});
            eq.deschedule(doomed);
            eq.step();
        }
    };
    churn(warmupEvents);

    const std::uint64_t before = g_newCalls;
    churn(measuredEvents);
    EXPECT_EQ(g_newCalls - before, 0u);
}

TEST(KernelAlloc, RequestPoolReuseIsAllocationFree)
{
    mem::RequestPool pool;
    // Grow to steady capacity: hold a batch, release it.
    constexpr unsigned depth = 32;
    mem::PooledRequest *held[depth];
    for (auto &p : held)
        p = pool.acquire();
    for (auto &p : held)
        pool.release(p);

    const std::uint64_t before = g_newCalls;
    for (int round = 0; round < 10'000; ++round) {
        for (auto &p : held)
            p = pool.acquire();
        for (auto &p : held)
            pool.release(p);
    }
    EXPECT_EQ(g_newCalls - before, 0u);
}

} // namespace
