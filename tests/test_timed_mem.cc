/**
 * @file
 * Tests for the timed+functional memory accessor and DAX mapping.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "mem/memory_port.hh"
#include "mem/timed_mem.hh"
#include "persist/dax.hh"
#include "sim/logging.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::mem;

class CountingPort : public MemoryPort
{
  public:
    explicit CountingPort(Tick latency) : latency(latency) {}

    AccessResult
    access(const MemRequest &req, Tick when) override
    {
        ++count;
        lastOp = req.op;
        AccessResult result;
        result.completeAt = when + latency;
        return result;
    }

    Tick latency;
    std::uint64_t count = 0;
    MemOp lastOp = MemOp::Read;
};

TEST(TimedMem, WritesAreFunctionalAndTimed)
{
    CountingPort port(100 * tickNs);
    BackingStore store;
    TimedMem mem(port, &store);
    const std::uint64_t value = 0x1122334455667788ULL;
    const Tick done = mem.writeValue(0, 4096, value);
    EXPECT_EQ(done, 100 * tickNs);
    EXPECT_EQ(store.readValue<std::uint64_t>(4096), value);
    EXPECT_EQ(port.lastOp, MemOp::Write);
}

TEST(TimedMem, ReadsReturnStoredBytes)
{
    CountingPort port(50 * tickNs);
    BackingStore store;
    store.writeValue<std::uint32_t>(128, 42);
    TimedMem mem(port, &store);
    std::uint32_t out = 0;
    const Tick done = mem.readValue(10, 128, out);
    EXPECT_EQ(out, 42u);
    EXPECT_EQ(done, 10 + 50 * tickNs);
}

TEST(TimedMem, SpanChargesPerLine)
{
    CountingPort port(10 * tickNs);
    TimedMem mem(port);
    // 10 lines, serialized behind each other at 10 ns.
    const Tick done = mem.writeSpan(0, 0, 640);
    EXPECT_EQ(port.count, 10u);
    EXPECT_EQ(done, 100 * tickNs);
}

TEST(TimedMem, UnalignedSpanCoversAllTouchedLines)
{
    CountingPort port(10 * tickNs);
    TimedMem mem(port);
    // 2 bytes straddling a line boundary -> 2 lines.
    mem.writeSpan(0, 63, 2);
    EXPECT_EQ(port.count, 2u);
}

TEST(TimedMem, ZeroLengthIsFree)
{
    CountingPort port(10 * tickNs);
    TimedMem mem(port);
    EXPECT_EQ(mem.writeSpan(77, 0, 0), 77u);
    EXPECT_EQ(port.count, 0u);
}

TEST(TimedMem, LargeSpansExtrapolate)
{
    CountingPort port(10 * tickNs);
    TimedMem mem(port);
    const std::uint64_t big = (TimedMem::sampleLines * 4) * 64;
    const Tick done = mem.writeSpan(0, 0, big);
    // Only the sample prefix hits the port...
    EXPECT_EQ(port.count, TimedMem::sampleLines);
    // ...but the elapsed time covers all lines at the sampled rate.
    EXPECT_EQ(done, TimedMem::sampleLines * 4 * 10 * tickNs);
}

TEST(TimedMem, WorksWithoutBackingStore)
{
    CountingPort port(10 * tickNs);
    TimedMem mem(port);
    EXPECT_EQ(mem.backing(), nullptr);
    EXPECT_GT(mem.readSpan(0, 0, 128), 0u);
}

TEST(Dax, TranslationIsOffsetAdd)
{
    persist::DaxMapping map(0x7000'0000, 0x100'0000, 1 << 20);
    EXPECT_TRUE(map.contains(0x7000'0000));
    EXPECT_TRUE(map.contains(0x7000'0000 + (1 << 20) - 1));
    EXPECT_FALSE(map.contains(0x7000'0000 + (1 << 20)));
    EXPECT_EQ(map.toPhys(0x7000'0040), 0x100'0040u);
    EXPECT_EQ(map.toVirt(0x100'0040), 0x7000'0040u);
}

TEST(Dax, OutOfRangeTranslationFails)
{
    persist::DaxMapping map(0x1000, 0x2000, 0x100);
    EXPECT_THROW(map.toPhys(0x999), FatalError);
    EXPECT_THROW(map.toVirt(0x1fff), FatalError);
    EXPECT_THROW(persist::DaxMapping(0, 0, 0), FatalError);
}

} // namespace
