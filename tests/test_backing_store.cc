/**
 * @file
 * Unit tests for the functional backing store.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/backing_store.hh"

namespace
{

using namespace lightpc;
using mem::BackingStore;

TEST(BackingStore, UnwrittenReadsAsZero)
{
    BackingStore store;
    std::uint8_t buf[16];
    std::memset(buf, 0xff, sizeof(buf));
    store.read(0x1000, buf, sizeof(buf));
    for (std::uint8_t b : buf)
        EXPECT_EQ(b, 0);
}

TEST(BackingStore, RoundTripsValues)
{
    BackingStore store;
    store.writeValue<std::uint64_t>(0x42, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(store.readValue<std::uint64_t>(0x42),
              0xdeadbeefcafef00dULL);
}

TEST(BackingStore, CrossPageAccess)
{
    BackingStore store;
    const std::uint64_t addr = BackingStore::pageBytes - 4;
    store.writeValue<std::uint64_t>(addr, 0x0123456789abcdefULL);
    EXPECT_EQ(store.readValue<std::uint64_t>(addr),
              0x0123456789abcdefULL);
    EXPECT_EQ(store.materializedPages(), 2u);
}

TEST(BackingStore, ClearZeroesAndReleasesWholePages)
{
    BackingStore store;
    store.writeValue<std::uint32_t>(0, 7);
    store.writeValue<std::uint32_t>(BackingStore::pageBytes, 9);
    EXPECT_EQ(store.materializedPages(), 2u);
    store.clear(0, BackingStore::pageBytes);
    EXPECT_EQ(store.materializedPages(), 1u);
    EXPECT_EQ(store.readValue<std::uint32_t>(0), 0u);
    EXPECT_EQ(store.readValue<std::uint32_t>(BackingStore::pageBytes),
              9u);
}

TEST(BackingStore, PartialClearZeroesRange)
{
    BackingStore store;
    store.writeValue<std::uint32_t>(100, 0xaaaaaaaa);
    store.writeValue<std::uint32_t>(200, 0xbbbbbbbb);
    store.clear(100, 4);
    EXPECT_EQ(store.readValue<std::uint32_t>(100), 0u);
    EXPECT_EQ(store.readValue<std::uint32_t>(200), 0xbbbbbbbbu);
}

TEST(BackingStore, EqualsIgnoresZeroPages)
{
    BackingStore a, b;
    a.writeValue<std::uint32_t>(0x5000, 0);  // explicit zero page
    EXPECT_TRUE(a.equals(b));
    EXPECT_TRUE(b.equals(a));
    b.writeValue<std::uint32_t>(0x5000, 3);
    EXPECT_FALSE(a.equals(b));
    EXPECT_FALSE(b.equals(a));
}

TEST(BackingStore, EqualsDetectsDifferences)
{
    BackingStore a, b;
    a.writeValue<std::uint64_t>(64, 1);
    b.writeValue<std::uint64_t>(64, 1);
    EXPECT_TRUE(a.equals(b));
    b.writeValue<std::uint64_t>(72, 2);
    EXPECT_FALSE(a.equals(b));
}

TEST(BackingStore, ResetDropsEverything)
{
    BackingStore store;
    store.writeValue<std::uint64_t>(0, 1);
    store.reset();
    EXPECT_EQ(store.materializedPages(), 0u);
    EXPECT_EQ(store.readValue<std::uint64_t>(0), 0u);
}

TEST(BackingStore, LargeBlockCopy)
{
    BackingStore store;
    std::vector<std::uint8_t> data(3 * BackingStore::pageBytes + 17);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 31 + 7);
    store.write(12345, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    store.read(12345, back.data(), back.size());
    EXPECT_EQ(data, back);
}

} // namespace
