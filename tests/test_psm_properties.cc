/**
 * @file
 * Property tests over the PSM: invariants that must hold for any
 * request sequence, in every operating mode.
 */

#include <gtest/gtest.h>

#include "psm/psm.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::psm;

struct PsmCase
{
    bool earlyReturn;
    bool reconstruction;
    bool wearLeveling;
    DimmLayout layout;
    std::uint64_t seed;
};

class PsmProperty : public ::testing::TestWithParam<PsmCase>
{
};

TEST_P(PsmProperty, AccessInvariantsUnderRandomTraffic)
{
    const PsmCase c = GetParam();
    PsmParams params;
    params.earlyReturnWrites = c.earlyReturn;
    params.eccReconstruction = c.reconstruction;
    params.wearLeveling = c.wearLeveling;
    params.dimm.layout = c.layout;
    Psm psm(params);
    Rng rng(c.seed);

    Tick t = 0;
    std::uint64_t reads = 0, writes = 0;
    for (int i = 0; i < 20000; ++i) {
        mem::MemRequest req;
        req.op = rng.chance(0.7) ? mem::MemOp::Read
                                 : mem::MemOp::Write;
        req.addr = rng.below(std::uint64_t(1) << 32) & ~63ull;
        const Tick when = t;
        const auto result = psm.access(req, when);

        // Completion never precedes issue + the mandatory bus hop.
        ASSERT_GE(result.completeAt, when + params.busLatency);
        // The media is never freed before the issuer's completion
        // when the access was synchronous.
        if (!c.earlyReturn && req.op == mem::MemOp::Write) {
            ASSERT_GE(result.mediaFreeAt, result.completeAt);
        }

        if (req.op == mem::MemOp::Read)
            ++reads;
        else
            ++writes;

        // Mix open-loop and closed-loop issue.
        t = rng.chance(0.5) ? result.completeAt
                            : when + rng.below(500 * tickNs);
    }

    // Stats account exactly the traffic offered.
    EXPECT_EQ(psm.stats().reads, reads);
    EXPECT_EQ(psm.stats().writes, writes);
    EXPECT_EQ(psm.readLatencyHist().count(), reads);
    EXPECT_EQ(psm.writeLatencyHist().count(), writes);

    // In full-LightPC mode nothing ever blocked; in baseline mode
    // nothing was ever reconstructed.
    if (c.reconstruction) {
        EXPECT_EQ(psm.stats().blockedReads, 0u);
    } else {
        EXPECT_EQ(psm.stats().reconstructedReads, 0u);
    }

    // A flush quiesces everything: afterwards a read at the fence
    // tick is served without blocking or reconstruction.
    const Tick fence = psm.flush(t);
    ASSERT_GE(fence, t);
    mem::MemRequest probe;
    probe.op = mem::MemOp::Read;
    probe.addr = 0;
    const auto after = psm.access(probe, fence);
    EXPECT_FALSE(after.reconstructed);
    EXPECT_FALSE(after.rowBufferHit);
    EXPECT_LE(after.completeAt,
              fence + params.busLatency
                  + params.dimm.device.readLatency);

    // Wear accounting matches the media writes that happened.
    for (std::uint32_t d = 0; d < params.dimms; ++d) {
        auto &dimm = psm.dimm(d);
        for (std::uint32_t g = 0; g < dimm.groupCount(); ++g) {
            const auto &dev = dimm.group(g);
            std::uint64_t sum = 0;
            for (const auto w : dev.wearByRegion())
                sum += w;
            ASSERT_EQ(sum, dev.writeCount());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PsmProperty,
    ::testing::Values(
        PsmCase{true, true, true, DimmLayout::DualChannel, 1},
        PsmCase{true, true, false, DimmLayout::DualChannel, 2},
        PsmCase{false, false, true, DimmLayout::DualChannel, 3},
        PsmCase{false, false, false, DimmLayout::DualChannel, 4},
        PsmCase{true, false, true, DimmLayout::DualChannel, 5},
        PsmCase{true, true, true, DimmLayout::DramLike, 6},
        PsmCase{false, false, true, DimmLayout::DramLike, 7}));

TEST(PsmProperty, DeterministicAcrossIdenticalRuns)
{
    auto run = [] {
        Psm psm;
        Rng rng(77);
        Tick t = 0;
        for (int i = 0; i < 5000; ++i) {
            mem::MemRequest req;
            req.op = rng.chance(0.6) ? mem::MemOp::Read
                                     : mem::MemOp::Write;
            req.addr =
                rng.below(std::uint64_t(1) << 30) & ~63ull;
            t = psm.access(req, t).completeAt;
        }
        return t;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
