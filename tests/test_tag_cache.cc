/**
 * @file
 * Unit tests for the tag-only cache model.
 */

#include <gtest/gtest.h>

#include "mem/tag_cache.hh"
#include "sim/logging.hh"

namespace
{

using namespace lightpc;
using mem::TagCache;

TEST(TagCache, MissThenHit)
{
    TagCache cache(1024, 64, 2);
    EXPECT_FALSE(cache.access(0, false).hit);
    EXPECT_TRUE(cache.access(0, false).hit);
    EXPECT_TRUE(cache.access(63, false).hit);   // same line
    EXPECT_FALSE(cache.access(64, false).hit);  // next line
}

TEST(TagCache, LruEviction)
{
    // 2 ways, 64 B lines, 2 sets -> set stride 128.
    TagCache cache(256, 64, 2);
    cache.access(0, false);    // set 0, way A
    cache.access(256, false);  // set 0, way B
    cache.access(0, false);    // touch A (B becomes LRU)
    const auto out = cache.access(512, false);  // set 0, evicts B
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedBlock, 256u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(256));
}

TEST(TagCache, DirtyPropagatesToEviction)
{
    TagCache cache(128, 64, 1);  // direct-mapped, 2 sets
    cache.access(0, true);
    const auto out = cache.access(128, false);  // same set
    EXPECT_TRUE(out.evicted);
    EXPECT_TRUE(out.evictedDirty);
}

TEST(TagCache, CleanMissEvictionIsNotDirty)
{
    TagCache cache(128, 64, 1);
    cache.access(0, false);
    const auto out = cache.access(128, false);
    EXPECT_TRUE(out.evicted);
    EXPECT_FALSE(out.evictedDirty);
}

TEST(TagCache, HitUpgradesDirtiness)
{
    TagCache cache(128, 64, 1);
    cache.access(0, false);
    cache.access(0, true);  // store hit
    const auto out = cache.access(128, false);
    EXPECT_TRUE(out.evictedDirty);
}

TEST(TagCache, DirtyLineAccounting)
{
    TagCache cache(4096, 64, 4);
    cache.access(0, true);
    cache.access(64, false);
    cache.access(128, true);
    EXPECT_EQ(cache.validLines(), 3u);
    EXPECT_EQ(cache.dirtyLines(), 2u);
    const auto dirty = cache.collectDirty();
    EXPECT_EQ(dirty.size(), 2u);
}

TEST(TagCache, CleanAllKeepsContents)
{
    TagCache cache(4096, 64, 4);
    cache.access(0, true);
    cache.cleanAll();
    EXPECT_EQ(cache.dirtyLines(), 0u);
    EXPECT_TRUE(cache.contains(0));
}

TEST(TagCache, InvalidateReturnsDirtiness)
{
    TagCache cache(4096, 64, 4);
    cache.access(0, true);
    cache.access(64, false);
    EXPECT_TRUE(cache.invalidate(0));
    EXPECT_FALSE(cache.invalidate(64));
    EXPECT_FALSE(cache.invalidate(128));  // absent
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(TagCache, InvalidateAll)
{
    TagCache cache(4096, 64, 4);
    for (int i = 0; i < 10; ++i)
        cache.access(i * 64, true);
    cache.invalidateAll();
    EXPECT_EQ(cache.validLines(), 0u);
    EXPECT_EQ(cache.dirtyLines(), 0u);
}

TEST(TagCache, RejectsBadGeometry)
{
    EXPECT_THROW(TagCache(1024, 63, 2), FatalError);
    EXPECT_THROW(TagCache(1024, 64, 0), FatalError);
}

TEST(TagCache, CapacityWorksAsExpected)
{
    // 16 lines total: fill them all, the 17th distinct line evicts.
    TagCache cache(1024, 64, 4);
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(cache.access(i * 64, false).hit);
    EXPECT_EQ(cache.validLines(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(cache.access(i * 64, false).hit);
}

} // namespace
