/**
 * @file
 * Integration tests over full platforms: the qualitative orderings
 * the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "platform/pmem_modes.hh"
#include "platform/system.hh"
#include "workload/spec.hh"
#include "workload/stream_bench.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::platform;

RunResult
runOn(PlatformKind kind, const std::string &workload,
      std::uint64_t scale = 20000)
{
    SystemConfig config;
    config.kind = kind;
    config.scaleDivisor = scale;
    System system(config);
    return system.run(workload::findWorkload(workload));
}

TEST(PlatformIntegration, LightPcWithinModestFactorOfDramOnly)
{
    // Fig. 15: LightPC is only ~12% slower than LegacyPC on
    // average; allow a loose band per-workload.
    const auto legacy = runOn(PlatformKind::LegacyPC, "Redis");
    const auto light = runOn(PlatformKind::LightPC, "Redis");
    const double slowdown = static_cast<double>(light.elapsed)
        / static_cast<double>(legacy.elapsed);
    EXPECT_GT(slowdown, 0.95);
    EXPECT_LT(slowdown, 1.5);
}

TEST(PlatformIntegration, BaselinePsmIsMuchSlowerThanLightPc)
{
    // Fig. 15: LightPC beats LightPC-B, most dramatically where
    // many threads share the write-pressured PSM (SNAP, KeyDB).
    for (const char *name : {"SNAP", "KeyDB"}) {
        const auto b = runOn(PlatformKind::LightPCB, name);
        const auto light = runOn(PlatformKind::LightPC, name);
        const double speedup = static_cast<double>(b.elapsed)
            / static_cast<double>(light.elapsed);
        EXPECT_GT(speedup, 1.4) << name;
    }
}

TEST(PlatformIntegration, ReadLatencyBlowupOnBaseline)
{
    // Fig. 16: memory-level read latency of LightPC-B exceeds
    // LightPC's on every RAW-prone workload, most where writes are
    // heaviest (see EXPERIMENTS.md for the magnitude discussion).
    for (const char *name : {"wrf", "bzip2", "SNAP"}) {
        const auto b = runOn(PlatformKind::LightPCB, name);
        const auto light = runOn(PlatformKind::LightPC, name);
        EXPECT_GT(b.memReadLatencyNs, 1.25 * light.memReadLatencyNs)
            << name;
    }
}

TEST(PlatformIntegration, McfBenefitsLeastFromReconstruction)
{
    // Fig. 16: mcf writes so rarely that LightPC-B and LightPC are
    // nearly indistinguishable.
    const auto b = runOn(PlatformKind::LightPCB, "mcf");
    const auto light = runOn(PlatformKind::LightPC, "mcf");
    EXPECT_LT(static_cast<double>(b.elapsed)
                  / static_cast<double>(light.elapsed),
              1.15);
}

TEST(PlatformIntegration, LightPcDrawsFarLessPower)
{
    // Fig. 18: ~73% lower platform power.
    const auto legacy = runOn(PlatformKind::LegacyPC, "SNAP");
    const auto light = runOn(PlatformKind::LightPC, "SNAP");
    EXPECT_LT(light.watts, 0.45 * legacy.watts);
}

TEST(PlatformIntegration, LightPcSavesEnergyDespiteSlowdown)
{
    // Fig. 18: ~69% energy saving end to end.
    const auto legacy = runOn(PlatformKind::LegacyPC, "gcc");
    const auto light = runOn(PlatformKind::LightPC, "gcc");
    EXPECT_LT(light.joules, 0.6 * legacy.joules);
}

TEST(PlatformIntegration, CacheHitRatesTrackTableTwo)
{
    const auto &spec = workload::findWorkload("AMG");
    SystemConfig config;
    config.kind = PlatformKind::LightPC;
    config.scaleDivisor = 10000;
    System system(config);
    const auto result = system.run(spec);
    EXPECT_NEAR(result.loadHitRate, spec.readHitRate, 0.05);
    EXPECT_NEAR(result.storeHitRate, spec.writeHitRate, 0.05);
}

TEST(PlatformIntegration, MultithreadedWorkloadsUseAllCores)
{
    SystemConfig config;
    config.scaleDivisor = 20000;
    System system(config);
    const auto result =
        system.run(workload::findWorkload("Memcached"));
    // All 8 cores retire work.
    for (std::uint32_t c = 0; c < system.coreCount(); ++c)
        EXPECT_GT(system.core(c).stats().instructions, 0u);
    EXPECT_GT(result.ipc, 1.0);  // aggregate over 8 cores
}

TEST(PlatformIntegration, SingleThreadedWorkloadsUseOneCore)
{
    SystemConfig config;
    config.scaleDivisor = 20000;
    System system(config);
    system.run(workload::findWorkload("bzip2"));
    EXPECT_GT(system.core(0).stats().instructions, 0u);
    for (std::uint32_t c = 1; c < system.coreCount(); ++c)
        EXPECT_EQ(system.core(c).stats().instructions, 0u);
}

TEST(PlatformIntegration, StreamBandwidthRatioIsReasonable)
{
    // Fig. 17: LightPC sustains a sizable fraction (avg ~78%) of
    // LegacyPC bandwidth on STREAM.
    auto bandwidth = [](PlatformKind kind) {
        SystemConfig config;
        config.kind = kind;
        System system(config);
        std::vector<std::unique_ptr<workload::StreamWorkload>> owned;
        std::vector<cpu::InstrStream *> raw;
        for (std::uint32_t tid = 0; tid < 8; ++tid) {
            owned.push_back(
                std::make_unique<workload::StreamWorkload>(
                    workload::StreamKernel::Copy, 1 << 18,
                    System::workloadBase, tid, 8));
            raw.push_back(owned.back().get());
        }
        const auto result = System(config).runStreams(raw);
        double bytes = 0;
        for (const auto &s : owned)
            bytes += static_cast<double>(s->bytesMoved());
        return bytes / ticksToSec(result.elapsed);
    };
    const double legacy = bandwidth(PlatformKind::LegacyPC);
    const double light = bandwidth(PlatformKind::LightPC);
    EXPECT_GT(light / legacy, 0.4);
    EXPECT_LT(light / legacy, 1.1);
}

TEST(PlatformIntegration, SngOnLiveSystemMeetsHoldup)
{
    // Run a workload, pull the plug mid-flight, verify the EP-cut
    // lands within the ATX spec budget with real dirty caches.
    SystemConfig config;
    config.kind = PlatformKind::LightPC;
    config.scaleDivisor = 10000;
    System system(config);
    const auto &spec = workload::findWorkload("KeyDB");

    workload::SyntheticConfig wconfig;
    wconfig.scaleDivisor = config.scaleDivisor;
    auto streams = workload::makeStreams(spec, wconfig, 8,
                                         System::workloadBase);
    for (std::size_t i = 0; i < streams.size(); ++i)
        system.core(static_cast<std::uint32_t>(i))
            .run(*streams[i], 0);

    // Let it run a while, then power-fail.
    system.eventQueue().run(2 * tickMs);
    for (std::uint32_t c = 0; c < system.coreCount(); ++c)
        system.core(c).stop();
    const Tick when = system.eventQueue().now();
    const auto stop = system.sng().stop(when);
    EXPECT_GT(stop.dirtyLinesFlushed, 0u);
    EXPECT_LE(stop.totalTicks(), 16 * tickMs);

    const auto go = system.sng().resume(stop.offlineDone + tickMs);
    EXPECT_FALSE(go.coldBoot);
}

TEST(PmemModes, MemModeTracksDramOnly)
{
    // Fig. 4: mem-mode within a couple percent of DRAM-only.
    const auto &spec = workload::findWorkload("SHA512");
    const auto dram = runPmemMode(PmemMode::DramOnly, spec, 10000);
    const auto mem = runPmemMode(PmemMode::MemMode, spec, 10000);
    const double ratio = static_cast<double>(mem.run.elapsed)
        / static_cast<double>(dram.run.elapsed);
    EXPECT_LT(ratio, 1.15);
}

TEST(PmemModes, OrderingMatchesFigFour)
{
    // DRAM-only <= mem < app < object < trans (latency).
    const auto &spec = workload::findWorkload("KeyDB");
    const auto dram = runPmemMode(PmemMode::DramOnly, spec, 20000);
    const auto app = runPmemMode(PmemMode::AppMode, spec, 20000);
    const auto object = runPmemMode(PmemMode::ObjectMode, spec, 20000);
    const auto trans = runPmemMode(PmemMode::TransMode, spec, 20000);

    EXPECT_GT(app.run.elapsed, dram.run.elapsed);
    EXPECT_GT(object.run.elapsed, app.run.elapsed);
    EXPECT_GT(trans.run.elapsed, 2 * object.run.elapsed);
    // The headline: trans-mode is many times DRAM-only.
    const double blowup = static_cast<double>(trans.run.elapsed)
        / static_cast<double>(dram.run.elapsed);
    EXPECT_GT(blowup, 4.0);
}

TEST(PmemModes, PersistenceModesBurnMoreMemoryPower)
{
    const auto &spec = workload::findWorkload("Redis");
    const auto dram = runPmemMode(PmemMode::DramOnly, spec, 20000);
    const auto object = runPmemMode(PmemMode::ObjectMode, spec, 20000);
    EXPECT_GT(object.memWatts, dram.memWatts);
    EXPECT_GT(object.memJoules, 1.3 * dram.memJoules);
}

} // namespace
