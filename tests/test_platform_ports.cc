/**
 * @file
 * Unit tests for the platform-level memory fabrics: DramArray,
 * PmemArray, and the NMEM (mem-mode) controller.
 */

#include <gtest/gtest.h>

#include "platform/dram_array.hh"
#include "platform/pmem_modes.hh"
#include "sim/logging.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::platform;
using mem::MemOp;
using mem::MemRequest;

MemRequest
req(MemOp op, mem::Addr addr)
{
    MemRequest r;
    r.op = op;
    r.addr = addr;
    return r;
}

TEST(DramArray, InterleavesAcrossDimms)
{
    DramArray array(4);
    // Consecutive 4 KB chunks land on consecutive DIMMs.
    for (int chunk = 0; chunk < 8; ++chunk)
        array.access(req(MemOp::Read, mem::Addr(chunk) * 4096), 0);
    for (std::uint32_t d = 0; d < 4; ++d)
        EXPECT_EQ(array.dimm(d).readCount(), 2u);
    EXPECT_EQ(array.totalAccesses(), 8u);
}

TEST(DramArray, ParallelChunksDoNotConflict)
{
    DramArray array(2);
    const auto a = array.access(req(MemOp::Read, 0), 0);
    const auto b = array.access(req(MemOp::Read, 4096), 0);
    // Different DIMMs: both start immediately.
    EXPECT_EQ(a.completeAt, b.completeAt);
}

TEST(DramArray, ChargesBusLatency)
{
    DramArray with_bus(1, mem::DramParams(), 4096, 10 * tickNs);
    DramArray without(1, mem::DramParams(), 4096, 0);
    const auto slow = with_bus.access(req(MemOp::Read, 0), 0);
    const auto fast = without.access(req(MemOp::Read, 0), 0);
    EXPECT_EQ(slow.completeAt - fast.completeAt, 10 * tickNs);
}

TEST(PmemArray, RoutesByInterleave)
{
    PmemArray array(2);
    array.access(req(MemOp::Read, 0), 0);
    array.access(req(MemOp::Read, 4096), 0);
    EXPECT_EQ(array.dimm(0).mediaReads()
                  + array.dimm(0).internalReadHits(),
              1u);
    EXPECT_EQ(array.dimm(1).mediaReads()
                  + array.dimm(1).internalReadHits(),
              1u);
    EXPECT_EQ(array.totalAccesses(), 2u);
}

TEST(PmemArray, RejectsZeroDimms)
{
    EXPECT_THROW(PmemArray(0), FatalError);
}

TEST(NmemPort, CachesPmemInDram)
{
    DramArray dram(2);
    PmemArray pmem(2);
    NmemPort nmem(dram, pmem, 1 << 20);

    const auto miss = nmem.access(req(MemOp::Read, 0), 0);
    EXPECT_EQ(nmem.misses(), 1u);
    const auto hit = nmem.access(req(MemOp::Read, 64),
                                 miss.completeAt);
    EXPECT_EQ(nmem.hits(), 1u);
    // The hit is pure DRAM speed: strictly faster than the miss.
    EXPECT_LT(hit.completeAt - miss.completeAt, miss.completeAt);
}

TEST(NmemPort, SnarfOverlapsFillWithDram)
{
    DramArray dram(2);
    PmemArray pmem(2);
    NmemPort nmem(dram, pmem, 1 << 20);
    const auto miss = nmem.access(req(MemOp::Read, 0), 0);
    // The miss completes no earlier than either component but is
    // not their sum (overlap).
    const auto pmem_alone =
        PmemArray(2).access(req(MemOp::Read, 0), 0);
    const auto dram_alone =
        DramArray(2).access(req(MemOp::Read, 0), 0);
    EXPECT_GE(miss.completeAt,
              std::max(pmem_alone.completeAt,
                       dram_alone.completeAt));
    EXPECT_LT(miss.completeAt,
              pmem_alone.completeAt + dram_alone.completeAt);
}

TEST(NmemPort, DirtyVictimsWriteBackToPmem)
{
    DramArray dram(1);
    PmemArray pmem(1);
    // Tiny NMEM cache: 2 blocks of 4 KB, direct-mapped-ish.
    NmemPort nmem(dram, pmem, 8192);
    Tick t = 0;
    // Dirty a block, then evict it with conflicting fills.
    t = nmem.access(req(MemOp::Write, 0), t).completeAt;
    const auto before = pmem.totalAccesses();
    for (int i = 1; i < 8; ++i)
        t = nmem.access(req(MemOp::Read, mem::Addr(i) * 8192), t)
                .completeAt;
    EXPECT_GT(pmem.totalAccesses(), before);
}

TEST(NmemPort, SequentialPrefetchHidesNextBlock)
{
    DramArray dram(2);
    PmemArray pmem(2);
    NmemPort nmem(dram, pmem, 1 << 20);
    Tick t = 0;
    t = nmem.access(req(MemOp::Read, 0), t).completeAt;
    // The next 4 KB block was prefetched: accessing it now hits.
    const auto hits_before = nmem.hits();
    t = nmem.access(req(MemOp::Read, 4096), t).completeAt;
    EXPECT_EQ(nmem.hits(), hits_before + 1);
}

} // namespace
