/**
 * @file
 * Tests for the network service plane (src/net/): NIC descriptor
 * rings and their DCB context images, the KV/RPC server's crash
 * semantics, the client fleet's retry machinery, the availability
 * recorder, and end-to-end runService() invariants.
 */

#include <gtest/gtest.h>

#include "net/service_plane.hh"

#include "kernel/device.hh"
#include "mem/backing_store.hh"
#include "mem/memory_port.hh"
#include "mem/timed_mem.hh"
#include "net/availability.hh"
#include "net/client_fleet.hh"
#include "net/kv_service.hh"
#include "net/nic.hh"
#include "pecos/sng.hh"
#include "platform/system.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::net;

RpcRequest
makeReq(std::uint64_t id, workload::KvOp op, std::uint64_t key,
        std::uint64_t value_seed = 0)
{
    RpcRequest req;
    req.reqId = id;
    req.client = static_cast<std::uint32_t>(id % 17);
    req.op = op;
    req.key = key;
    req.valueSeed = value_seed;
    req.scanLength = 8;
    return req;
}

// --- NIC rings -----------------------------------------------------

TEST(Nic, RingsAreBoundedFifos)
{
    kernel::DeviceManager mgr;
    NicParams params;
    params.ringEntries = 4;
    NicDevice nic(mgr, "eth0", params);

    for (std::uint64_t i = 1; i <= 4; ++i)
        EXPECT_TRUE(nic.rxPush(makeReq(i, workload::KvOp::Get, i)));
    EXPECT_FALSE(nic.rxPush(makeReq(5, workload::KvOp::Get, 5)));
    EXPECT_EQ(nic.stats().rxDropsFull, 1u);
    EXPECT_EQ(nic.rxOccupancy(), 4u);

    RpcRequest out;
    for (std::uint64_t i = 1; i <= 4; ++i) {
        ASSERT_TRUE(nic.rxPop(out));
        EXPECT_EQ(out.reqId, i);
    }
    EXPECT_FALSE(nic.rxPop(out));

    RpcResponse resp;
    for (std::uint64_t i = 1; i <= 4; ++i) {
        resp.reqId = i;
        EXPECT_TRUE(nic.txPush(resp));
    }
    EXPECT_FALSE(nic.txPush(resp));
    EXPECT_EQ(nic.stats().txDropsFull, 1u);
    for (std::uint64_t i = 1; i <= 4; ++i) {
        ASSERT_TRUE(nic.txPop(resp));
        EXPECT_EQ(resp.reqId, i);
    }
    EXPECT_EQ(nic.stats().maxRxOccupancy, 4u);
    EXPECT_EQ(nic.stats().maxTxOccupancy, 4u);
}

TEST(Nic, LinkDownRefusesTraffic)
{
    kernel::DeviceManager mgr;
    NicDevice nic(mgr, "eth0");
    EXPECT_TRUE(nic.linkUp());

    nic.device().setSuspended(true);
    EXPECT_FALSE(nic.linkUp());
    EXPECT_FALSE(nic.rxPush(makeReq(1, workload::KvOp::Get, 1)));
    EXPECT_EQ(nic.stats().rxDropsDown, 1u);
    RpcResponse resp;
    EXPECT_FALSE(nic.txPush(resp));

    nic.device().setSuspended(false);
    EXPECT_TRUE(nic.rxPush(makeReq(2, workload::KvOp::Get, 2)));
}

TEST(Nic, RegistersAsNetworkClassInDpmList)
{
    kernel::DeviceManager mgr;
    const std::size_t before = mgr.count();
    NicDevice nic(mgr, "eth0");
    ASSERT_EQ(mgr.count(), before + 1);
    const kernel::Device &dev = mgr.device(mgr.count() - 1);
    EXPECT_EQ(&dev, &nic.device());
    EXPECT_EQ(dev.deviceClass(), kernel::DeviceClass::Network);
    EXPECT_EQ(dev.contextBytes(), nic.contextImageBytes());
    EXPECT_GT(dev.contextBytes(), 0u);
}

TEST(Nic, ContextRoundTripBeatsScramble)
{
    kernel::DeviceManager mgr;
    NicParams params;
    params.ringEntries = 8;
    NicDevice nic(mgr, "eth0", params);

    // Advance the RX head so the image must preserve a non-trivial
    // ring state, not just entry zero onward.
    ASSERT_TRUE(nic.rxPush(makeReq(1, workload::KvOp::Get, 1)));
    RpcRequest scratch;
    ASSERT_TRUE(nic.rxPop(scratch));
    for (std::uint64_t i = 2; i <= 4; ++i)
        ASSERT_TRUE(nic.rxPush(makeReq(i, workload::KvOp::Put, 10 + i,
                                       100 + i)));
    RpcResponse resp;
    resp.reqId = 77;
    resp.client = 3;
    resp.version = 9;
    resp.status = RpcStatus::Ok;
    ASSERT_TRUE(nic.txPush(resp));

    std::vector<std::uint8_t> image;
    nic.saveContext(image);
    EXPECT_EQ(image.size(), nic.contextImageBytes());

    Rng rng(5);
    nic.scrambleVolatile(rng);
    nic.restoreContext(image.data(), image.size());

    EXPECT_EQ(nic.rxOccupancy(), 3u);
    for (std::uint64_t i = 2; i <= 4; ++i) {
        ASSERT_TRUE(nic.rxPop(scratch));
        EXPECT_EQ(scratch.reqId, i);
        EXPECT_EQ(scratch.key, 10 + i);
        EXPECT_EQ(scratch.valueSeed, 100 + i);
    }
    RpcResponse rout;
    ASSERT_TRUE(nic.txPop(rout));
    EXPECT_EQ(rout.reqId, 77u);
    EXPECT_EQ(rout.version, 9u);
}

TEST(Nic, QueuedFramesRideTheDcbThroughStopAndGo)
{
    platform::SystemConfig sc;
    sc.kind = platform::PlatformKind::LightPC;
    sc.kernel.userProcesses = 8;
    sc.kernel.kernelThreads = 6;
    sc.kernel.deviceCount = 12;
    platform::System sys(sc);
    NicDevice nic(sys.kernel().devices(), "eth0");

    for (std::uint64_t i = 1; i <= 5; ++i)
        ASSERT_TRUE(
            nic.rxPush(makeReq(i, workload::KvOp::Put, 100 + i, i)));
    RpcResponse resp;
    resp.reqId = 77;
    resp.client = 3;
    resp.version = 9;
    ASSERT_TRUE(nic.txPush(resp));

    const auto stop = sys.sng().stop(0);
    ASSERT_FALSE(stop.commitFailed);
    EXPECT_EQ(stop.contextImagesSaved, 1u);
    EXPECT_FALSE(nic.linkUp());

    // DRAM contents are unspecified once the rails fall; only the
    // DCB image in OC-PMEM may carry the rings across.
    Rng rng(99);
    sys.kernel().scramble(rng);
    nic.scrambleVolatile(rng);

    const auto go = sys.sng().resume(stop.offlineDone);
    EXPECT_FALSE(go.coldBoot);
    EXPECT_EQ(go.contextImagesRestored, 1u);
    EXPECT_TRUE(nic.linkUp());

    EXPECT_EQ(nic.rxOccupancy(), 5u);
    RpcRequest out;
    for (std::uint64_t i = 1; i <= 5; ++i) {
        ASSERT_TRUE(nic.rxPop(out));
        EXPECT_EQ(out.reqId, i);
        EXPECT_EQ(out.key, 100 + i);
        EXPECT_EQ(out.valueSeed, i);
    }
    RpcResponse rout;
    ASSERT_TRUE(nic.txPop(rout));
    EXPECT_EQ(rout.reqId, 77u);
    EXPECT_EQ(rout.version, 9u);
}

// --- KvService -----------------------------------------------------

struct FixedPort : mem::MemoryPort
{
    mem::AccessResult
    access(const mem::MemRequest &, Tick when) override
    {
        mem::AccessResult result;
        result.completeAt = when + 40 * tickNs;
        return result;
    }
    Tick fence(Tick when) override { return when; }
};

struct KvRig
{
    explicit KvRig(const KvParams &params = KvParams())
        : timed(port, &store), kv(store, timed, params)
    {
    }

    FixedPort port;
    mem::BackingStore store;
    mem::TimedMem timed;
    KvService kv;
};

TEST(KvService, PutThenGetReturnsVersionedValue)
{
    KvRig rig;
    Tick t = 0;

    auto miss = rig.kv.execute(t, makeReq(1, workload::KvOp::Get, 42));
    EXPECT_EQ(miss.status, RpcStatus::NotFound);

    auto put =
        rig.kv.execute(t, makeReq(2, workload::KvOp::Put, 42, 777));
    EXPECT_EQ(put.status, RpcStatus::Ok);
    EXPECT_EQ(put.version, 1u);

    auto get = rig.kv.execute(t, makeReq(3, workload::KvOp::Get, 42));
    EXPECT_EQ(get.status, RpcStatus::Ok);
    EXPECT_EQ(get.version, 1u);
    EXPECT_EQ(get.valueSeed, 777u);

    auto put2 =
        rig.kv.execute(t, makeReq(4, workload::KvOp::Put, 42, 778));
    EXPECT_EQ(put2.version, 2u);
    EXPECT_EQ(rig.kv.appliedCount(), 2u);
}

TEST(KvService, PutRetryIsIdempotent)
{
    KvRig rig;
    Tick t = 0;
    const auto req = makeReq(9, workload::KvOp::Put, 5, 123);

    auto first = rig.kv.execute(t, req);
    EXPECT_EQ(first.status, RpcStatus::Ok);
    EXPECT_EQ(first.version, 1u);

    // The retry carries the same request ID; the persistent dedup
    // set must acknowledge without re-applying.
    auto retry = req;
    retry.attempt = 2;
    auto second = rig.kv.execute(t, retry);
    EXPECT_EQ(second.status, RpcStatus::Ok);
    EXPECT_EQ(second.version, 1u);
    EXPECT_EQ(rig.kv.stats().idempotentHits, 1u);
    EXPECT_EQ(rig.kv.appliedCount(), 1u);
    ASSERT_TRUE(rig.kv.lookup(5).has_value());
    EXPECT_EQ(rig.kv.lookup(5)->version, 1u);
}

TEST(KvService, AdmissionQueueBackpressures)
{
    KvParams params;
    params.queueCapacity = 4;
    KvRig rig(params);

    for (std::uint64_t i = 1; i <= 4; ++i)
        EXPECT_TRUE(rig.kv.admit(makeReq(i, workload::KvOp::Get, i)));
    EXPECT_FALSE(rig.kv.admit(makeReq(5, workload::KvOp::Get, 5)));
    EXPECT_EQ(rig.kv.stats().rejected, 1u);
    EXPECT_EQ(rig.kv.stats().maxQueueDepth, 4u);

    RpcRequest out;
    ASSERT_TRUE(rig.kv.queuePop(out));
    EXPECT_EQ(out.reqId, 1u);
    EXPECT_TRUE(rig.kv.admit(makeReq(6, workload::KvOp::Get, 6)));

    rig.kv.dropQueue();
    EXPECT_EQ(rig.kv.queueDepth(), 0u);
    EXPECT_EQ(rig.kv.stats().queueDropped, 4u);
}

TEST(KvService, ExpiredDeadlineIsNotApplied)
{
    KvRig rig;
    Tick t = 1 * tickMs;
    auto req = makeReq(1, workload::KvOp::Put, 7, 42);
    req.deadline = t + 1;  // expires during parse

    auto resp = rig.kv.execute(t, req);
    EXPECT_EQ(resp.status, RpcStatus::DeadlineExceeded);
    EXPECT_EQ(rig.kv.stats().deadlineExceeded, 1u);
    EXPECT_FALSE(rig.kv.lookup(7).has_value());
    EXPECT_EQ(rig.kv.appliedCount(), 0u);
    EXPECT_TRUE(rig.kv.appliedIds().empty());
}

TEST(KvService, TornPutRollsBackOnRecovery)
{
    KvRig rig;
    Tick t = 0;
    auto full =
        rig.kv.execute(t, makeReq(1, workload::KvOp::Put, 11, 500));
    ASSERT_EQ(full.status, RpcStatus::Ok);

    // Power dies right after parse: every write of the second PUT's
    // transaction carries a stamp at or past the cut and is dropped
    // at the media, exactly as the rails would drop it.
    const Tick cut = t + rig.kv.params().parseCost + 1;
    rig.store.armPowerCut(cut, 0xdead);
    (void)rig.kv.execute(t, makeReq(2, workload::KvOp::Put, 22, 501));
    rig.store.disarmPowerCut();

    Tick rt = t;
    rig.kv.recover(rt);
    EXPECT_EQ(rig.kv.stats().recoveries, 1u);

    // The torn PUT vanished; the committed one is intact.
    EXPECT_FALSE(rig.kv.lookup(22).has_value());
    ASSERT_TRUE(rig.kv.lookup(11).has_value());
    EXPECT_EQ(rig.kv.lookup(11)->version, 1u);
    EXPECT_EQ(rig.kv.lookup(11)->valueSeed, 500u);
    EXPECT_EQ(rig.kv.appliedCount(), 1u);
    const auto ids = rig.kv.appliedIds();
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 1u);
}

TEST(KvService, ScanIsDeterministic)
{
    KvRig rig;
    Tick t = 0;
    for (std::uint64_t k = 1; k <= 6; ++k)
        (void)rig.kv.execute(
            t, makeReq(k, workload::KvOp::Put, k, 1000 + k));

    auto a = rig.kv.execute(t, makeReq(50, workload::KvOp::Scan, 1));
    auto b = rig.kv.execute(t, makeReq(51, workload::KvOp::Scan, 1));
    EXPECT_EQ(a.status, RpcStatus::Ok);
    EXPECT_EQ(a.valueSeed, b.valueSeed);
    EXPECT_EQ(rig.kv.stats().scans, 2u);
}

// --- ClientFleet ---------------------------------------------------

TEST(ClientFleet, BackoffDoublesAndCaps)
{
    FleetParams params;
    params.clientTimeout = 10 * tickMs;
    params.backoffCap = 40 * tickMs;
    params.retryJitter = 0;
    ClientFleet fleet(params);

    EXPECT_EQ(fleet.timeoutFor(1), 10 * tickMs);
    EXPECT_EQ(fleet.timeoutFor(2), 20 * tickMs);
    EXPECT_EQ(fleet.timeoutFor(3), 40 * tickMs);
    EXPECT_EQ(fleet.timeoutFor(4), 40 * tickMs);
    EXPECT_EQ(fleet.timeoutFor(8), 40 * tickMs);
}

TEST(ClientFleet, RetryKeepsRequestIdAndExhaustsBudget)
{
    FleetParams params;
    params.maxAttempts = 3;
    ClientFleet fleet(params);

    const RpcRequest req = fleet.newRequest(100);
    EXPECT_TRUE(fleet.isOutstanding(req.reqId));
    EXPECT_EQ(fleet.firstIssuedAt(req.reqId), 100u);

    auto r2 = fleet.retryAttempt(req.reqId, 200);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->reqId, req.reqId);
    EXPECT_EQ(r2->attempt, 2u);
    auto r3 = fleet.retryAttempt(req.reqId, 300);
    ASSERT_TRUE(r3.has_value());
    EXPECT_EQ(r3->attempt, 3u);

    // Budget spent: the request fails and leaves the outstanding set.
    EXPECT_FALSE(fleet.retryAttempt(req.reqId, 400).has_value());
    EXPECT_EQ(fleet.stats().failed, 1u);
    EXPECT_FALSE(fleet.isOutstanding(req.reqId));
    EXPECT_EQ(fleet.stats().attempts, 3u);
    EXPECT_EQ(fleet.stats().retries, 2u);
}

TEST(ClientFleet, AckOutcomesDriveTheLedger)
{
    FleetParams params;
    params.mix.getFraction = 0.0;
    params.mix.putFraction = 1.0;  // every request is a PUT
    ClientFleet fleet(params);

    const RpcRequest req = fleet.newRequest(10);
    ASSERT_EQ(req.op, workload::KvOp::Put);
    EXPECT_EQ(fleet.putKeyOf(req.reqId), req.key);

    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.status = RpcStatus::Rejected;
    EXPECT_EQ(fleet.onResponse(resp, 20),
              ClientFleet::AckOutcome::RetriableError);
    EXPECT_TRUE(fleet.isOutstanding(req.reqId));

    resp.status = RpcStatus::Ok;
    resp.version = 4;
    EXPECT_EQ(fleet.onResponse(resp, 30),
              ClientFleet::AckOutcome::Completed);
    ASSERT_EQ(fleet.ackedPuts().size(), 1u);
    EXPECT_EQ(fleet.ackedPuts()[0].key, req.key);
    EXPECT_EQ(fleet.ackedPuts()[0].version, 4u);
    EXPECT_EQ(fleet.ackedPuts()[0].ackedAt, 30u);

    // A late duplicate ack (the retry that also completed) counts
    // but does not re-enter the ledger.
    EXPECT_EQ(fleet.onResponse(resp, 40),
              ClientFleet::AckOutcome::Duplicate);
    EXPECT_EQ(fleet.stats().duplicateAcks, 1u);
    EXPECT_EQ(fleet.ackedPuts().size(), 1u);
}

// --- AvailabilityRecorder ------------------------------------------

TEST(Availability, StragglerAckDoesNotCloseAnOutage)
{
    AvailabilityRecorder rec(10 * tickMs);
    rec.onSuccess(100, 50, 90);
    rec.outageBegin(200);

    // A frame already on the wire at the cut delivers afterwards,
    // but it was *served* before the event: it must not count as
    // recovery.
    rec.onSuccess(210, 120, 150);
    ASSERT_EQ(rec.outageRecords().size(), 1u);
    EXPECT_FALSE(rec.outageRecords()[0].closed);
    EXPECT_EQ(rec.outageRecords()[0].downtime(), maxTick);

    rec.onSuccess(5000, 4000, 4900);
    EXPECT_TRUE(rec.outageRecords()[0].closed);
    EXPECT_EQ(rec.outageRecords()[0].firstSuccessAfter, 5000u);
    EXPECT_EQ(rec.outageRecords()[0].lastSuccessBefore, 210u);
}

// --- runService end to end -----------------------------------------

ServiceConfig
tinyConfig(PersistMode mode, std::uint64_t seed)
{
    ServiceConfig cfg;
    cfg.mode = mode;
    cfg.runFor = 600 * tickMs;
    cfg.drainGrace = 2500 * tickMs;
    cfg.cuts = 1;
    cfg.offDwell = 50 * tickMs;
    cfg.fleet.clients = 300;
    cfg.fleet.arrivalsPerSec = 1500.0;
    cfg.seed = seed;
    return cfg;
}

TEST(ServicePlane, SnGSmokeHoldsInvariants)
{
    const ServiceConfig cfg = tinyConfig(PersistMode::SnG, 11);
    const ServiceResult r = runService(cfg);

    EXPECT_TRUE(r.violations.empty());
    EXPECT_EQ(r.lostAckedPuts, 0u);
    EXPECT_EQ(r.duplicateApplied, 0u);
    EXPECT_GT(r.completed, 0u);
    EXPECT_GT(r.ackedPuts, 0u);

    ASSERT_EQ(r.outages.size(), 1u);
    EXPECT_LT(r.outages[0].downtime, maxTick);
    EXPECT_FALSE(r.outages[0].coldBoot);
    EXPECT_EQ(r.coldBoots, 0u);

    // The NIC rings rode the DCB: an image per power cycle, and at
    // least one queued frame resurrected (the cut lands under load).
    EXPECT_EQ(r.contextImagesSaved, 1u);
    EXPECT_EQ(r.contextImagesRestored, 1u);
    EXPECT_GE(r.ringPreservedFrames, 1u);
    EXPECT_EQ(r.ringFramesLost, 0u);

    EXPECT_LE(r.maxQueueDepth, cfg.kv.queueCapacity);
    EXPECT_LE(r.maxRxOccupancy, cfg.nic.ringEntries);
    EXPECT_LE(r.maxTxOccupancy, cfg.nic.ringEntries);
}

TEST(ServicePlane, SnGBeatsColdRebootOnClientVisibleDowntime)
{
    const ServiceResult sng =
        runService(tinyConfig(PersistMode::SnG, 13));
    const ServiceResult syspc =
        runService(tinyConfig(PersistMode::SysPc, 13));

    EXPECT_TRUE(sng.violations.empty());
    EXPECT_TRUE(syspc.violations.empty());
    EXPECT_EQ(syspc.coldBoots, 1u);
    ASSERT_EQ(sng.outages.size(), 1u);
    ASSERT_EQ(syspc.outages.size(), 1u);
    EXPECT_LT(sng.worstAttributable, syspc.worstAttributable);
}

TEST(ServicePlane, DeterministicUnderFixedSeed)
{
    const ServiceResult a = runService(tinyConfig(PersistMode::SnG, 17));
    const ServiceResult b = runService(tinyConfig(PersistMode::SnG, 17));
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.ackedPuts, b.ackedPuts);
    ASSERT_EQ(a.outages.size(), b.outages.size());
    for (std::size_t i = 0; i < a.outages.size(); ++i)
        EXPECT_EQ(a.outages[i].downtime, b.outages[i].downtime);

    const ServiceResult c = runService(tinyConfig(PersistMode::SnG, 18));
    EXPECT_NE(a.digest, c.digest);
}

} // namespace
