/**
 * @file
 * Tests for the network service plane (src/net/): NIC descriptor
 * rings and their DCB context images, the KV/RPC server's crash
 * semantics, the client fleet's retry machinery, the availability
 * recorder, and end-to-end runService() invariants.
 */

#include <gtest/gtest.h>

#include <set>

#include "net/service_plane.hh"

#include "kernel/device.hh"
#include "mem/backing_store.hh"
#include "mem/memory_port.hh"
#include "mem/timed_mem.hh"
#include "net/availability.hh"
#include "net/client_fleet.hh"
#include "net/kv_service.hh"
#include "net/nic.hh"
#include "pecos/sng.hh"
#include "platform/system.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::net;

RpcRequest
makeReq(std::uint64_t id, workload::KvOp op, std::uint64_t key,
        std::uint64_t value_seed = 0)
{
    RpcRequest req;
    req.reqId = id;
    req.client = static_cast<std::uint32_t>(id % 17);
    req.op = op;
    req.key = key;
    req.valueSeed = value_seed;
    req.scanLength = 8;
    return req;
}

// --- NIC rings -----------------------------------------------------

TEST(Nic, RingsAreBoundedFifos)
{
    kernel::DeviceManager mgr;
    NicParams params;
    params.ringEntries = 4;
    NicDevice nic(mgr, "eth0", params);

    for (std::uint64_t i = 1; i <= 4; ++i)
        EXPECT_TRUE(nic.rxPush(makeReq(i, workload::KvOp::Get, i)));
    EXPECT_FALSE(nic.rxPush(makeReq(5, workload::KvOp::Get, 5)));
    EXPECT_EQ(nic.stats().rxDropsFull, 1u);
    EXPECT_EQ(nic.rxOccupancy(), 4u);

    RpcRequest out;
    for (std::uint64_t i = 1; i <= 4; ++i) {
        ASSERT_TRUE(nic.rxPop(out));
        EXPECT_EQ(out.reqId, i);
    }
    EXPECT_FALSE(nic.rxPop(out));

    RpcResponse resp;
    for (std::uint64_t i = 1; i <= 4; ++i) {
        resp.reqId = i;
        EXPECT_TRUE(nic.txPush(resp));
    }
    EXPECT_FALSE(nic.txPush(resp));
    EXPECT_EQ(nic.stats().txDropsFull, 1u);
    for (std::uint64_t i = 1; i <= 4; ++i) {
        ASSERT_TRUE(nic.txPop(resp));
        EXPECT_EQ(resp.reqId, i);
    }
    EXPECT_EQ(nic.stats().maxRxOccupancy, 4u);
    EXPECT_EQ(nic.stats().maxTxOccupancy, 4u);
}

TEST(Nic, LinkDownRefusesTraffic)
{
    kernel::DeviceManager mgr;
    NicDevice nic(mgr, "eth0");
    EXPECT_TRUE(nic.linkUp());

    nic.device().setSuspended(true);
    EXPECT_FALSE(nic.linkUp());
    EXPECT_FALSE(nic.rxPush(makeReq(1, workload::KvOp::Get, 1)));
    EXPECT_EQ(nic.stats().rxDropsDown, 1u);
    RpcResponse resp;
    EXPECT_FALSE(nic.txPush(resp));

    nic.device().setSuspended(false);
    EXPECT_TRUE(nic.rxPush(makeReq(2, workload::KvOp::Get, 2)));
}

TEST(Nic, RegistersAsNetworkClassInDpmList)
{
    kernel::DeviceManager mgr;
    const std::size_t before = mgr.count();
    NicDevice nic(mgr, "eth0");
    ASSERT_EQ(mgr.count(), before + 1);
    const kernel::Device &dev = mgr.device(mgr.count() - 1);
    EXPECT_EQ(&dev, &nic.device());
    EXPECT_EQ(dev.deviceClass(), kernel::DeviceClass::Network);
    EXPECT_EQ(dev.contextBytes(), nic.contextImageBytes());
    EXPECT_GT(dev.contextBytes(), 0u);
}

TEST(Nic, ContextRoundTripBeatsScramble)
{
    kernel::DeviceManager mgr;
    NicParams params;
    params.ringEntries = 8;
    NicDevice nic(mgr, "eth0", params);

    // Advance the RX head so the image must preserve a non-trivial
    // ring state, not just entry zero onward.
    ASSERT_TRUE(nic.rxPush(makeReq(1, workload::KvOp::Get, 1)));
    RpcRequest scratch;
    ASSERT_TRUE(nic.rxPop(scratch));
    for (std::uint64_t i = 2; i <= 4; ++i)
        ASSERT_TRUE(nic.rxPush(makeReq(i, workload::KvOp::Put, 10 + i,
                                       100 + i)));
    RpcResponse resp;
    resp.reqId = 77;
    resp.client = 3;
    resp.version = 9;
    resp.status = RpcStatus::Ok;
    ASSERT_TRUE(nic.txPush(resp));

    std::vector<std::uint8_t> image;
    nic.saveContext(image);
    EXPECT_EQ(image.size(), nic.contextImageBytes());

    Rng rng(5);
    nic.scrambleVolatile(rng);
    nic.restoreContext(image.data(), image.size());

    EXPECT_EQ(nic.rxOccupancy(), 3u);
    for (std::uint64_t i = 2; i <= 4; ++i) {
        ASSERT_TRUE(nic.rxPop(scratch));
        EXPECT_EQ(scratch.reqId, i);
        EXPECT_EQ(scratch.key, 10 + i);
        EXPECT_EQ(scratch.valueSeed, 100 + i);
    }
    RpcResponse rout;
    ASSERT_TRUE(nic.txPop(rout));
    EXPECT_EQ(rout.reqId, 77u);
    EXPECT_EQ(rout.version, 9u);
}

TEST(Nic, QueuedFramesRideTheDcbThroughStopAndGo)
{
    platform::SystemConfig sc;
    sc.kind = platform::PlatformKind::LightPC;
    sc.kernel.userProcesses = 8;
    sc.kernel.kernelThreads = 6;
    sc.kernel.deviceCount = 12;
    platform::System sys(sc);
    NicDevice nic(sys.kernel().devices(), "eth0");

    for (std::uint64_t i = 1; i <= 5; ++i)
        ASSERT_TRUE(
            nic.rxPush(makeReq(i, workload::KvOp::Put, 100 + i, i)));
    RpcResponse resp;
    resp.reqId = 77;
    resp.client = 3;
    resp.version = 9;
    ASSERT_TRUE(nic.txPush(resp));

    const auto stop = sys.sng().stop(0);
    ASSERT_FALSE(stop.commitFailed);
    EXPECT_EQ(stop.contextImagesSaved, 1u);
    EXPECT_FALSE(nic.linkUp());

    // DRAM contents are unspecified once the rails fall; only the
    // DCB image in OC-PMEM may carry the rings across.
    Rng rng(99);
    sys.kernel().scramble(rng);
    nic.scrambleVolatile(rng);

    const auto go = sys.sng().resume(stop.offlineDone);
    EXPECT_FALSE(go.coldBoot);
    EXPECT_EQ(go.contextImagesRestored, 1u);
    EXPECT_TRUE(nic.linkUp());

    EXPECT_EQ(nic.rxOccupancy(), 5u);
    RpcRequest out;
    for (std::uint64_t i = 1; i <= 5; ++i) {
        ASSERT_TRUE(nic.rxPop(out));
        EXPECT_EQ(out.reqId, i);
        EXPECT_EQ(out.key, 100 + i);
        EXPECT_EQ(out.valueSeed, i);
    }
    RpcResponse rout;
    ASSERT_TRUE(nic.txPop(rout));
    EXPECT_EQ(rout.reqId, 77u);
    EXPECT_EQ(rout.version, 9u);
}

// --- KvService -----------------------------------------------------

struct FixedPort : mem::MemoryPort
{
    mem::AccessResult
    access(const mem::MemRequest &, Tick when) override
    {
        mem::AccessResult result;
        result.completeAt = when + 40 * tickNs;
        return result;
    }
    Tick fence(Tick when) override { return when; }
};

struct KvRig
{
    explicit KvRig(const KvParams &params = KvParams())
        : timed(port, &store), kv(store, timed, params)
    {
    }

    FixedPort port;
    mem::BackingStore store;
    mem::TimedMem timed;
    KvService kv;
};

TEST(KvService, PutThenGetReturnsVersionedValue)
{
    KvRig rig;
    Tick t = 0;

    auto miss = rig.kv.execute(t, makeReq(1, workload::KvOp::Get, 42));
    EXPECT_EQ(miss.status, RpcStatus::NotFound);

    auto put =
        rig.kv.execute(t, makeReq(2, workload::KvOp::Put, 42, 777));
    EXPECT_EQ(put.status, RpcStatus::Ok);
    EXPECT_EQ(put.version, 1u);

    auto get = rig.kv.execute(t, makeReq(3, workload::KvOp::Get, 42));
    EXPECT_EQ(get.status, RpcStatus::Ok);
    EXPECT_EQ(get.version, 1u);
    EXPECT_EQ(get.valueSeed, 777u);

    auto put2 =
        rig.kv.execute(t, makeReq(4, workload::KvOp::Put, 42, 778));
    EXPECT_EQ(put2.version, 2u);
    EXPECT_EQ(rig.kv.appliedCount(), 2u);
}

TEST(KvService, PutRetryIsIdempotent)
{
    KvRig rig;
    Tick t = 0;
    const auto req = makeReq(9, workload::KvOp::Put, 5, 123);

    auto first = rig.kv.execute(t, req);
    EXPECT_EQ(first.status, RpcStatus::Ok);
    EXPECT_EQ(first.version, 1u);

    // The retry carries the same request ID; the persistent dedup
    // set must acknowledge without re-applying.
    auto retry = req;
    retry.attempt = 2;
    auto second = rig.kv.execute(t, retry);
    EXPECT_EQ(second.status, RpcStatus::Ok);
    EXPECT_EQ(second.version, 1u);
    EXPECT_EQ(rig.kv.stats().idempotentHits, 1u);
    EXPECT_EQ(rig.kv.appliedCount(), 1u);
    ASSERT_TRUE(rig.kv.lookup(5).has_value());
    EXPECT_EQ(rig.kv.lookup(5)->version, 1u);
}

TEST(KvService, AdmissionQueueBackpressures)
{
    KvParams params;
    params.queueCapacity = 4;
    KvRig rig(params);

    for (std::uint64_t i = 1; i <= 4; ++i)
        EXPECT_TRUE(rig.kv.admit(makeReq(i, workload::KvOp::Get, i)));
    EXPECT_FALSE(rig.kv.admit(makeReq(5, workload::KvOp::Get, 5)));
    EXPECT_EQ(rig.kv.stats().rejected, 1u);
    EXPECT_EQ(rig.kv.stats().maxQueueDepth, 4u);

    RpcRequest out;
    ASSERT_TRUE(rig.kv.queuePop(out));
    EXPECT_EQ(out.reqId, 1u);
    EXPECT_TRUE(rig.kv.admit(makeReq(6, workload::KvOp::Get, 6)));

    rig.kv.dropQueue();
    EXPECT_EQ(rig.kv.queueDepth(), 0u);
    EXPECT_EQ(rig.kv.stats().queueDropped, 4u);
}

TEST(KvService, ExpiredDeadlineIsNotApplied)
{
    KvRig rig;
    Tick t = 1 * tickMs;
    auto req = makeReq(1, workload::KvOp::Put, 7, 42);
    req.deadline = t + 1;  // expires during parse

    auto resp = rig.kv.execute(t, req);
    EXPECT_EQ(resp.status, RpcStatus::DeadlineExceeded);
    EXPECT_EQ(rig.kv.stats().deadlineExceeded, 1u);
    EXPECT_FALSE(rig.kv.lookup(7).has_value());
    EXPECT_EQ(rig.kv.appliedCount(), 0u);
    EXPECT_TRUE(rig.kv.appliedIds().empty());
}

TEST(KvService, TornPutRollsBackOnRecovery)
{
    KvRig rig;
    Tick t = 0;
    auto full =
        rig.kv.execute(t, makeReq(1, workload::KvOp::Put, 11, 500));
    ASSERT_EQ(full.status, RpcStatus::Ok);

    // Power dies right after parse: every write of the second PUT's
    // transaction carries a stamp at or past the cut and is dropped
    // at the media, exactly as the rails would drop it.
    const Tick cut = t + rig.kv.params().parseCost + 1;
    rig.store.armPowerCut(cut, 0xdead);
    (void)rig.kv.execute(t, makeReq(2, workload::KvOp::Put, 22, 501));
    rig.store.disarmPowerCut();

    Tick rt = t;
    rig.kv.recover(rt);
    EXPECT_EQ(rig.kv.stats().recoveries, 1u);

    // The torn PUT vanished; the committed one is intact.
    EXPECT_FALSE(rig.kv.lookup(22).has_value());
    ASSERT_TRUE(rig.kv.lookup(11).has_value());
    EXPECT_EQ(rig.kv.lookup(11)->version, 1u);
    EXPECT_EQ(rig.kv.lookup(11)->valueSeed, 500u);
    EXPECT_EQ(rig.kv.appliedCount(), 1u);
    const auto ids = rig.kv.appliedIds();
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 1u);
}

TEST(KvService, ScanIsDeterministic)
{
    KvRig rig;
    Tick t = 0;
    for (std::uint64_t k = 1; k <= 6; ++k)
        (void)rig.kv.execute(
            t, makeReq(k, workload::KvOp::Put, k, 1000 + k));

    auto a = rig.kv.execute(t, makeReq(50, workload::KvOp::Scan, 1));
    auto b = rig.kv.execute(t, makeReq(51, workload::KvOp::Scan, 1));
    EXPECT_EQ(a.status, RpcStatus::Ok);
    EXPECT_EQ(a.valueSeed, b.valueSeed);
    EXPECT_EQ(rig.kv.stats().scans, 2u);
}

// --- OpLog ---------------------------------------------------------

struct LogRig
{
    explicit LogRig(std::uint64_t capacity = 4096)
        : timed(port, &store)
    {
        OpLogParams params;
        params.base = std::uint64_t(1) << 20;
        params.capacity = capacity;
        log.emplace(store, timed, params);
        Tick t = 0;
        log->format(t);
    }

    FixedPort port;
    mem::BackingStore store;
    mem::TimedMem timed;
    std::optional<OpLog> log;
};

OpRecord
logRecord(std::uint64_t req_id, std::uint64_t key,
          std::uint64_t value_seed, std::uint64_t version)
{
    OpRecord rec;
    rec.reqId = req_id;
    rec.key = key;
    rec.valueSeed = value_seed;
    rec.version = version;
    rec.client = static_cast<std::uint32_t>(req_id % 17);
    return rec;
}

TEST(OpLog, AppendCommitDrainRoundTrip)
{
    LogRig rig;
    Tick t = 0;

    EXPECT_EQ(rig.log->append(t, logRecord(1, 10, 100, 1)), 1u);
    EXPECT_EQ(rig.log->append(t, logRecord(2, 20, 200, 1)), 2u);
    EXPECT_EQ(rig.log->append(t, logRecord(3, 30, 300, 1)), 3u);
    EXPECT_EQ(rig.log->uncommittedRecords(), 3u);
    EXPECT_EQ(rig.log->backlogRecords(), 0u);
    EXPECT_FALSE(rig.log->committedThrough(1));

    rig.log->commit(t);
    EXPECT_EQ(rig.log->uncommittedRecords(), 0u);
    EXPECT_EQ(rig.log->backlogRecords(), 3u);
    EXPECT_TRUE(rig.log->committedThrough(3));

    OpRecord head = rig.log->readHead(t);
    EXPECT_EQ(head.seq, 1u);
    EXPECT_EQ(head.reqId, 1u);
    EXPECT_EQ(head.checksum, OpLog::checksumOf(head));
    rig.log->pop();
    head = rig.log->readHead(t);
    EXPECT_EQ(head.seq, 2u);
    rig.log->pop();
    rig.log->persistHead(t);
    EXPECT_EQ(rig.log->headVirt(), 2 * OpLog::recordBytes);
    EXPECT_EQ(rig.log->persistedHeadVirt(), 2 * OpLog::recordBytes);

    EXPECT_EQ(rig.log->stats().appends, 3u);
    EXPECT_EQ(rig.log->stats().commits, 1u);
    EXPECT_EQ(rig.log->stats().pops, 2u);
    EXPECT_EQ(rig.log->stats().headPersists, 1u);

    // A fresh attach over the same region sees the durable cursors.
    OpLog other(rig.store, rig.timed, rig.log->params());
    ASSERT_TRUE(other.attach(t));
    EXPECT_EQ(other.headVirt(), 2 * OpLog::recordBytes);
    EXPECT_EQ(other.tailVirt(), 3 * OpLog::recordBytes);
    EXPECT_EQ(other.backlogRecords(), 1u);
}

TEST(OpLog, WouldBlockUntilEvictionHeadIsDurable)
{
    LogRig rig(2 * OpLog::recordBytes);
    Tick t = 0;

    rig.log->append(t, logRecord(1, 1, 10, 1));
    rig.log->append(t, logRecord(2, 2, 20, 1));
    EXPECT_TRUE(rig.log->wouldBlock());

    // Draining alone is not enough: the slot may only be rewritten
    // once the head persist covering its eviction has completed.
    rig.log->commit(t);
    (void)rig.log->readHead(t);
    rig.log->pop();
    (void)rig.log->readHead(t);
    rig.log->pop();
    EXPECT_TRUE(rig.log->wouldBlock());

    rig.log->persistHead(t);
    EXPECT_FALSE(rig.log->wouldBlock());

    // The reused slot gets a lap-disambiguating sequence number.
    EXPECT_EQ(rig.log->append(t, logRecord(3, 3, 30, 1)), 3u);
    rig.log->commit(t);
    const OpRecord rec = rig.log->readHead(t);
    EXPECT_EQ(rec.seq, 3u);
    EXPECT_EQ(rec.reqId, 3u);
}

TEST(OpLog, RecoveryReplaysDurableUncommittedSuffix)
{
    LogRig rig;
    Tick t = 0;
    rig.log->append(t, logRecord(1, 10, 100, 1));
    rig.log->commit(t);
    rig.log->append(t, logRecord(2, 20, 200, 1));
    // No commit: record 2 is durable (no cut fired) but its ack was
    // never released. Recovery replays it anyway — idempotent, and
    // strictly more state than the client was promised.

    OpLog other(rig.store, rig.timed, rig.log->params());
    ASSERT_TRUE(other.attach(t));
    const OpLogRecovery scan = other.recover(t);
    EXPECT_EQ(scan.headVirt, 0u);
    EXPECT_EQ(scan.tailVirt, OpLog::recordBytes);
    EXPECT_EQ(scan.scanEndVirt, 2 * OpLog::recordBytes);
    EXPECT_TRUE(scan.tailCovered);
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[0].reqId, 1u);
    EXPECT_EQ(scan.records[1].reqId, 2u);
    EXPECT_EQ(other.tailVirt(), 2 * OpLog::recordBytes);

    other.resetAfterReplay(t);
    EXPECT_EQ(other.backlogRecords(), 0u);
    EXPECT_EQ(other.headVirt(), other.tailVirt());
}

TEST(OpLog, RecoveryDiscardsRecordDroppedAtTheCut)
{
    LogRig rig;
    Tick t = 0;
    rig.log->append(t, logRecord(1, 10, 100, 1));
    rig.log->commit(t);

    // The rails die exactly as the second append's line store begins:
    // the whole line is dropped and the slot still reads as zeros.
    rig.store.armPowerCut(t, 0xfeed);
    rig.log->append(t, logRecord(2, 20, 200, 1));
    rig.store.disarmPowerCut();

    OpLog other(rig.store, rig.timed, rig.log->params());
    ASSERT_TRUE(other.attach(t));
    const OpLogRecovery scan = other.recover(t);
    EXPECT_TRUE(scan.tailCovered);
    EXPECT_EQ(scan.scanEndVirt, OpLog::recordBytes);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].reqId, 1u);
    EXPECT_EQ(other.stats().checksumStops, 1u);
}

// --- KvService op-log write path -----------------------------------

KvParams
oplogParams()
{
    KvParams params;
    params.writePath = WritePath::OpLog;
    return params;
}

TEST(KvServiceOpLog, PutAckDefersUntilGroupCommit)
{
    KvRig rig(oplogParams());
    Tick t = 0;

    bool deferred = false;
    auto put = rig.kv.execute(t, makeReq(1, workload::KvOp::Put, 42, 777),
                              &deferred);
    EXPECT_EQ(put.status, RpcStatus::Ok);
    EXPECT_EQ(put.version, 1u);
    EXPECT_TRUE(deferred);
    EXPECT_EQ(rig.kv.logUncommittedRecords(), 1u);
    EXPECT_EQ(rig.kv.appliedCount(), 0u);
    EXPECT_FALSE(rig.kv.lookup(42).has_value());

    // Read-your-writes: the GET observes the pending record, but it
    // must defer with it — its result is not durable yet either.
    bool get_deferred = false;
    auto get = rig.kv.execute(t, makeReq(2, workload::KvOp::Get, 42),
                              &get_deferred);
    EXPECT_EQ(get.status, RpcStatus::Ok);
    EXPECT_EQ(get.version, 1u);
    EXPECT_EQ(get.valueSeed, 777u);
    EXPECT_TRUE(get_deferred);

    rig.kv.logCommit(t);
    EXPECT_EQ(rig.kv.logUncommittedRecords(), 0u);
    EXPECT_EQ(rig.kv.logBacklogRecords(), 1u);
    get_deferred = false;
    get = rig.kv.execute(t, makeReq(3, workload::KvOp::Get, 42),
                         &get_deferred);
    EXPECT_EQ(get.version, 1u);
    EXPECT_FALSE(get_deferred);

    EXPECT_EQ(rig.kv.logDrain(t, 64), 1u);
    EXPECT_EQ(rig.kv.appliedCount(), 1u);
    ASSERT_TRUE(rig.kv.lookup(42).has_value());
    EXPECT_EQ(rig.kv.lookup(42)->version, 1u);
    EXPECT_EQ(rig.kv.lookup(42)->valueSeed, 777u);
    EXPECT_EQ(rig.kv.stats().logAppends, 1u);
    EXPECT_EQ(rig.kv.stats().logCommits, 1u);
    EXPECT_EQ(rig.kv.stats().logDrainApplied, 1u);
}

TEST(KvServiceOpLog, PendingRetryIsIdempotent)
{
    KvRig rig(oplogParams());
    Tick t = 0;
    const auto req = makeReq(9, workload::KvOp::Put, 5, 123);

    bool deferred = false;
    auto first = rig.kv.execute(t, req, &deferred);
    EXPECT_EQ(first.version, 1u);
    EXPECT_TRUE(deferred);

    // Retry while the record sits uncommitted in the log: no second
    // append, and the ack defers on the same group commit.
    auto retry = req;
    retry.attempt = 2;
    bool retry_deferred = false;
    auto second = rig.kv.execute(t, retry, &retry_deferred);
    EXPECT_EQ(second.status, RpcStatus::Ok);
    EXPECT_EQ(second.version, 1u);
    EXPECT_TRUE(retry_deferred);
    EXPECT_EQ(rig.kv.stats().idempotentHits, 1u);
    EXPECT_EQ(rig.kv.stats().logAppends, 1u);

    // After drain the retry answers from the persistent dedup set.
    rig.kv.logDrainAll(t);
    retry.attempt = 3;
    retry_deferred = true;
    auto third = rig.kv.execute(t, retry, &retry_deferred);
    EXPECT_EQ(third.version, 1u);
    EXPECT_FALSE(retry_deferred);
    EXPECT_EQ(rig.kv.stats().idempotentHits, 2u);
    EXPECT_EQ(rig.kv.appliedCount(), 1u);
}

TEST(KvServiceOpLog, VersionChainsThroughPendingRecords)
{
    KvRig rig(oplogParams());
    Tick t = 0;
    bool deferred = false;

    auto p1 = rig.kv.execute(t, makeReq(1, workload::KvOp::Put, 5, 100),
                             &deferred);
    EXPECT_EQ(p1.version, 1u);
    auto p2 = rig.kv.execute(t, makeReq(2, workload::KvOp::Put, 5, 101),
                             &deferred);
    EXPECT_EQ(p2.version, 2u);

    auto get = rig.kv.execute(t, makeReq(3, workload::KvOp::Get, 5),
                              &deferred);
    EXPECT_EQ(get.version, 2u);
    EXPECT_EQ(get.valueSeed, 101u);

    rig.kv.logDrainAll(t);
    ASSERT_TRUE(rig.kv.lookup(5).has_value());
    EXPECT_EQ(rig.kv.lookup(5)->version, 2u);
    EXPECT_EQ(rig.kv.lookup(5)->valueSeed, 101u);
    EXPECT_EQ(rig.kv.lookup(5)->lastReqId, 2u);
    EXPECT_EQ(rig.kv.appliedCount(), 2u);
}

TEST(KvServiceOpLog, FullRingStallDrainsInline)
{
    KvParams params = oplogParams();
    params.oplog.capacity = 4 * OpLog::recordBytes;
    KvRig rig(params);
    Tick t = 0;

    for (std::uint64_t k = 1; k <= 6; ++k) {
        bool deferred = false;
        auto resp = rig.kv.execute(
            t, makeReq(k, workload::KvOp::Put, k, 1000 + k), &deferred);
        EXPECT_EQ(resp.status, RpcStatus::Ok);
        EXPECT_EQ(resp.version, 1u);
    }
    EXPECT_GE(rig.kv.stats().logStallDrains, 1u);
    EXPECT_EQ(rig.kv.stats().logAppends, 6u);

    rig.kv.logDrainAll(t);
    EXPECT_EQ(rig.kv.appliedCount(), 6u);
    for (std::uint64_t k = 1; k <= 6; ++k) {
        ASSERT_TRUE(rig.kv.lookup(k).has_value());
        EXPECT_EQ(rig.kv.lookup(k)->version, 1u);
        EXPECT_EQ(rig.kv.lookup(k)->valueSeed, 1000 + k);
    }
}

TEST(KvServiceOpLog, CommittedRecordsSurviveACrashUncommittedVanish)
{
    KvRig rig(oplogParams());
    Tick t = 0;
    bool deferred = false;

    auto acked = rig.kv.execute(
        t, makeReq(1, workload::KvOp::Put, 11, 500), &deferred);
    ASSERT_EQ(acked.status, RpcStatus::Ok);
    rig.kv.logCommit(t);  // group commit: the ack may now release

    // Power dies before the second PUT's append: its line store is
    // dropped whole, and its ack never released (still deferred).
    rig.store.armPowerCut(t, 0xbeef);
    (void)rig.kv.execute(t, makeReq(2, workload::KvOp::Put, 22, 501),
                         &deferred);
    EXPECT_TRUE(deferred);
    rig.store.disarmPowerCut();

    Tick rt = t;
    rig.kv.recover(rt);
    EXPECT_EQ(rig.kv.stats().recoveries, 1u);
    EXPECT_EQ(rig.kv.stats().logReplayApplied, 1u);

    // The committed PUT was never drained, so only replay can have
    // restored it; the dropped one left no trace.
    ASSERT_TRUE(rig.kv.lookup(11).has_value());
    EXPECT_EQ(rig.kv.lookup(11)->version, 1u);
    EXPECT_EQ(rig.kv.lookup(11)->valueSeed, 500u);
    EXPECT_FALSE(rig.kv.lookup(22).has_value());
    EXPECT_EQ(rig.kv.appliedCount(), 1u);
    const auto ids = rig.kv.appliedIds();
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], 1u);
    EXPECT_EQ(rig.kv.logBacklogRecords(), 0u);
    EXPECT_EQ(rig.kv.logUncommittedRecords(), 0u);

    bool get_deferred = true;
    auto get = rig.kv.execute(rt, makeReq(3, workload::KvOp::Get, 22),
                              &get_deferred);
    EXPECT_EQ(get.status, RpcStatus::NotFound);
    EXPECT_FALSE(get_deferred);
}

TEST(KvServiceOpLog, CrashAnywhereInsideDrainAppliesExactlyOnce)
{
    // Probe one clean timeline to learn the drain window, then sweep
    // power cuts across it. Wherever the cut lands — inside the apply
    // transaction, between its commit and the head persist, or past
    // the whole drain — the committed record must recover to exactly
    // one application.
    Tick drain_start = 0;
    Tick drain_end = 0;
    {
        KvRig probe(oplogParams());
        Tick t = 0;
        bool deferred = false;
        (void)probe.kv.execute(
            t, makeReq(1, workload::KvOp::Put, 11, 500), &deferred);
        probe.kv.logCommit(t);
        drain_start = t;
        (void)probe.kv.logDrain(t, 4);
        drain_end = t;
    }
    ASSERT_GT(drain_end, drain_start);

    const int trials = 48;
    int saw_replay = 0;
    int saw_skip_or_drained = 0;
    for (int i = 0; i < trials; ++i) {
        const Tick cut = drain_start
            + (drain_end - drain_start) * Tick(i) / Tick(trials - 1);
        KvRig rig(oplogParams());
        Tick t = 0;
        bool deferred = false;
        (void)rig.kv.execute(
            t, makeReq(1, workload::KvOp::Put, 11, 500), &deferred);
        rig.kv.logCommit(t);
        rig.store.armPowerCut(cut, 0x50 + std::uint64_t(i));
        (void)rig.kv.logDrain(t, 4);
        rig.store.disarmPowerCut();

        Tick rt = t;
        rig.kv.recover(rt);
        ASSERT_TRUE(rig.kv.lookup(11).has_value()) << "cut=" << cut;
        EXPECT_EQ(rig.kv.lookup(11)->version, 1u) << "cut=" << cut;
        EXPECT_EQ(rig.kv.lookup(11)->valueSeed, 500u);
        EXPECT_EQ(rig.kv.appliedCount(), 1u) << "cut=" << cut;
        ASSERT_EQ(rig.kv.appliedIds().size(), 1u) << "cut=" << cut;

        if (rig.kv.stats().logReplayApplied > 0)
            ++saw_replay;
        else
            ++saw_skip_or_drained;
    }
    // The sweep covered both fates: cuts that rolled the apply back
    // (replay restores it) and cuts the apply survived (replay skips
    // it, or the head persist landed too and the scan finds nothing).
    EXPECT_GT(saw_replay, 0);
    EXPECT_GT(saw_skip_or_drained, 0);
}

TEST(KvServiceOpLog, TornAppendRecoversToAppliedOnceOrAbsent)
{
    // Satellite: the torn-tail property. Locate the append's line
    // store on a clean timeline, then land a cut *inside* that store
    // under many torn-prefix seeds. Whatever byte prefix of the
    // record lands, recovery must converge to "applied exactly once"
    // (the full line made it) or "absent" (checksum discards the
    // prefix) — a GET may never observe a torn in-between.
    Tick append_at = 0;
    {
        KvRig probe(oplogParams());
        Tick t = 0;
        bool deferred = false;
        (void)probe.kv.execute(
            t, makeReq(1, workload::KvOp::Put, 77, 900), &deferred);
        ASSERT_NE(probe.kv.opLog(), nullptr);
        OpRecord rec;
        probe.timed.readValue(t, probe.kv.opLog()->slotAddr(0), rec);
        ASSERT_EQ(rec.reqId, 1u);
        append_at = rec.appendedAt;
    }

    std::set<std::uint64_t> torn_prefixes;
    int saw_applied = 0;
    int saw_absent = 0;
    for (std::uint64_t seed = 0; seed < 96; ++seed) {
        KvRig rig(oplogParams());
        Tick t = 0;
        bool deferred = false;
        rig.store.armPowerCut(append_at + 20 * tickNs, seed);
        (void)rig.kv.execute(
            t, makeReq(1, workload::KvOp::Put, 77, 900), &deferred);
        EXPECT_TRUE(deferred);  // the ack never released
        EXPECT_EQ(rig.store.cutStats().tornWrites, 1u);
        torn_prefixes.insert(rig.store.cutStats().lastTornBytes);
        rig.store.disarmPowerCut();

        Tick rt = t;
        rig.kv.recover(rt);
        const auto state = rig.kv.lookup(77);
        if (state.has_value()) {
            // The full record landed: applied exactly once.
            ++saw_applied;
            EXPECT_EQ(state->version, 1u);
            EXPECT_EQ(state->valueSeed, 900u);
            EXPECT_EQ(rig.kv.appliedCount(), 1u);
            ASSERT_EQ(rig.kv.appliedIds().size(), 1u);
            EXPECT_EQ(rig.kv.appliedIds()[0], 1u);
        } else {
            // A shorter prefix failed the checksum: no trace at all.
            ++saw_absent;
            EXPECT_EQ(rig.kv.appliedCount(), 0u);
            EXPECT_TRUE(rig.kv.appliedIds().empty());
            bool get_deferred = false;
            auto get = rig.kv.execute(
                rt, makeReq(2, workload::KvOp::Get, 77), &get_deferred);
            EXPECT_EQ(get.status, RpcStatus::NotFound);
        }

        // Either way the client's retry converges to exactly one
        // application of the PUT.
        auto retry = makeReq(1, workload::KvOp::Put, 77, 900);
        retry.attempt = 2;
        bool retry_deferred = false;
        (void)rig.kv.execute(rt, retry, &retry_deferred);
        rig.kv.logDrainAll(rt);
        ASSERT_TRUE(rig.kv.lookup(77).has_value());
        EXPECT_EQ(rig.kv.lookup(77)->version, 1u);
        EXPECT_EQ(rig.kv.appliedCount(), 1u);
    }

    // The seed sweep exercised a broad spread of byte offsets across
    // the 64-byte record, including both recovery outcomes.
    EXPECT_GE(torn_prefixes.size(), 24u);
    EXPECT_GT(saw_absent, 0);
}

// --- dedup-table compaction ----------------------------------------

TEST(KvService, DedupCompactionPreservesRetryHorizon)
{
    KvParams params;
    params.dedupCapacity = 64;
    params.dedupRetention = 1 * tickSec;
    KvRig rig(params);
    Tick t = 0;

    // Fill to just under the 3/4 threshold early in time...
    for (std::uint64_t i = 1; i <= 40; ++i)
        (void)rig.kv.execute(
            t, makeReq(i, workload::KvOp::Put, i, 100 + i));
    EXPECT_EQ(rig.kv.stats().dedupCompactions, 0u);

    // ...then cross it much later: the early IDs are past retention
    // and compaction evicts exactly those.
    t = 2 * tickSec;
    for (std::uint64_t i = 101; i <= 112; ++i)
        (void)rig.kv.execute(
            t, makeReq(i, workload::KvOp::Put, i, 500 + i));
    EXPECT_GE(rig.kv.stats().dedupCompactions, 1u);
    EXPECT_EQ(rig.kv.compactedCount(), 40u);
    EXPECT_GE(rig.kv.dedupFloor(), 1 * tickSec);

    // The audit identity survives eviction, exactly.
    EXPECT_EQ(rig.kv.appliedCount(),
              rig.kv.appliedIds().size() + rig.kv.compactedCount());
    EXPECT_EQ(rig.kv.dedupLiveCount(), rig.kv.appliedIds().size());

    // A late retry of an ID inside the retention horizon still hits
    // the dedup set — compaction never forgot it.
    auto retry = makeReq(105, workload::KvOp::Put, 105, 605);
    retry.attempt = 2;
    const std::uint64_t applied_before = rig.kv.appliedCount();
    auto resp = rig.kv.execute(t, retry);
    EXPECT_EQ(resp.status, RpcStatus::Ok);
    EXPECT_EQ(resp.version, 1u);
    EXPECT_EQ(rig.kv.stats().idempotentHits, 1u);
    EXPECT_EQ(rig.kv.appliedCount(), applied_before);

    // Crash recovery re-reads floor and compacted count from the
    // persistent header; the retry stays idempotent afterwards.
    const Tick floor = rig.kv.dedupFloor();
    Tick rt = t;
    rig.kv.recover(rt);
    EXPECT_EQ(rig.kv.compactedCount(), 40u);
    EXPECT_EQ(rig.kv.dedupFloor(), floor);
    retry.attempt = 3;
    resp = rig.kv.execute(rt, retry);
    EXPECT_EQ(resp.version, 1u);
    EXPECT_EQ(rig.kv.appliedCount(), applied_before);
    EXPECT_EQ(rig.kv.appliedCount(),
              rig.kv.appliedIds().size() + rig.kv.compactedCount());
}

// --- ClientFleet ---------------------------------------------------

TEST(ClientFleet, BackoffDoublesAndCaps)
{
    FleetParams params;
    params.clientTimeout = 10 * tickMs;
    params.backoffCap = 40 * tickMs;
    params.retryJitter = 0;
    ClientFleet fleet(params);

    EXPECT_EQ(fleet.timeoutFor(0, 1), 10 * tickMs);
    EXPECT_EQ(fleet.timeoutFor(0, 2), 20 * tickMs);
    EXPECT_EQ(fleet.timeoutFor(0, 3), 40 * tickMs);
    EXPECT_EQ(fleet.timeoutFor(0, 4), 40 * tickMs);
    EXPECT_EQ(fleet.timeoutFor(0, 8), 40 * tickMs);
}

TEST(ClientFleet, RetryKeepsRequestIdAndExhaustsBudget)
{
    FleetParams params;
    params.maxAttempts = 3;
    ClientFleet fleet(params);

    const RpcRequest req = fleet.newRequest(100);
    EXPECT_TRUE(fleet.isOutstanding(req.reqId));
    EXPECT_EQ(fleet.firstIssuedAt(req.reqId), 100u);

    auto r2 = fleet.retryAttempt(req.reqId, 200);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->reqId, req.reqId);
    EXPECT_EQ(r2->attempt, 2u);
    auto r3 = fleet.retryAttempt(req.reqId, 300);
    ASSERT_TRUE(r3.has_value());
    EXPECT_EQ(r3->attempt, 3u);

    // Budget spent: the request fails and leaves the outstanding set.
    EXPECT_FALSE(fleet.retryAttempt(req.reqId, 400).has_value());
    EXPECT_EQ(fleet.stats().failed, 1u);
    EXPECT_FALSE(fleet.isOutstanding(req.reqId));
    EXPECT_EQ(fleet.stats().attempts, 3u);
    EXPECT_EQ(fleet.stats().retries, 2u);
}

TEST(ClientFleet, AckOutcomesDriveTheLedger)
{
    FleetParams params;
    params.mix.getFraction = 0.0;
    params.mix.putFraction = 1.0;  // every request is a PUT
    ClientFleet fleet(params);

    const RpcRequest req = fleet.newRequest(10);
    ASSERT_EQ(req.op, workload::KvOp::Put);
    EXPECT_EQ(fleet.putKeyOf(req.reqId), req.key);

    RpcResponse resp;
    resp.reqId = req.reqId;
    resp.status = RpcStatus::Rejected;
    EXPECT_EQ(fleet.onResponse(resp, 20),
              ClientFleet::AckOutcome::RetriableError);
    EXPECT_TRUE(fleet.isOutstanding(req.reqId));

    resp.status = RpcStatus::Ok;
    resp.version = 4;
    EXPECT_EQ(fleet.onResponse(resp, 30),
              ClientFleet::AckOutcome::Completed);
    ASSERT_EQ(fleet.ackedPuts().size(), 1u);
    EXPECT_EQ(fleet.ackedPuts()[0].key, req.key);
    EXPECT_EQ(fleet.ackedPuts()[0].version, 4u);
    EXPECT_EQ(fleet.ackedPuts()[0].ackedAt, 30u);

    // A late duplicate ack (the retry that also completed) counts
    // but does not re-enter the ledger.
    EXPECT_EQ(fleet.onResponse(resp, 40),
              ClientFleet::AckOutcome::Duplicate);
    EXPECT_EQ(fleet.stats().duplicateAcks, 1u);
    EXPECT_EQ(fleet.ackedPuts().size(), 1u);
}

TEST(ClientFleet, MaxRetrySpanDominatesEveryBackoffSchedule)
{
    // Jitter-free schedule: the span is exact.
    FleetParams exact;
    exact.clientTimeout = 10 * tickMs;
    exact.backoffCap = 40 * tickMs;
    exact.retryJitter = 0;
    exact.maxAttempts = 5;
    EXPECT_EQ(exact.maxRetrySpan(), (10 + 20 + 40 + 40) * tickMs);

    // With jitter, every draw is strictly below the per-attempt
    // ceiling the span assumes, so the realized schedule can never
    // exceed it — this is what makes the dedup retention horizon
    // derived from maxRetrySpan() safe.
    FleetParams params;
    ClientFleet fleet(params);
    Tick realized = 0;
    for (std::uint32_t attempt = 1; attempt < params.maxAttempts;
         ++attempt)
        realized += fleet.timeoutFor(7, attempt);
    EXPECT_LE(realized, params.maxRetrySpan());
    EXPECT_GT(params.maxRetrySpan(), 0u);
}

// --- AvailabilityRecorder ------------------------------------------

TEST(Availability, StragglerAckDoesNotCloseAnOutage)
{
    AvailabilityRecorder rec(10 * tickMs);
    rec.onSuccess(100, 50, 90);
    rec.outageBegin(200);

    // A frame already on the wire at the cut delivers afterwards,
    // but it was *served* before the event: it must not count as
    // recovery.
    rec.onSuccess(210, 120, 150);
    ASSERT_EQ(rec.outageRecords().size(), 1u);
    EXPECT_FALSE(rec.outageRecords()[0].closed);
    EXPECT_EQ(rec.outageRecords()[0].downtime(), maxTick);

    rec.onSuccess(5000, 4000, 4900);
    EXPECT_TRUE(rec.outageRecords()[0].closed);
    EXPECT_EQ(rec.outageRecords()[0].firstSuccessAfter, 5000u);
    EXPECT_EQ(rec.outageRecords()[0].lastSuccessBefore, 210u);
}

TEST(Availability, AckServedAtEventTickNeitherClosesNorNarrows)
{
    AvailabilityRecorder rec(10 * tickMs);
    rec.onSuccess(100, 50, 90);
    rec.outageBegin(200);

    // An ack stamped *exactly* at the power event — e.g. a batch
    // flushed as the rails failed — rides the preserved ring and
    // delivers long after restoration. It proves nothing about
    // either side of the cut: treating it as recovery would close
    // the outage, and treating it as a straggler would slide
    // lastSuccessBefore out to its late delivery. It must do neither.
    rec.onSuccess(900, 800, 200);
    ASSERT_EQ(rec.outageRecords().size(), 1u);
    EXPECT_FALSE(rec.outageRecords()[0].closed);
    EXPECT_EQ(rec.outageRecords()[0].lastSuccessBefore, 100u);

    rec.onSuccess(1000, 950, 990);
    EXPECT_TRUE(rec.outageRecords()[0].closed);
    EXPECT_EQ(rec.outageRecords()[0].downtime(), Tick(1000 - 100));
}

TEST(Availability, ImmediateRecoveryClosesWithoutUnderflow)
{
    AvailabilityRecorder rec(10 * tickMs);
    rec.onSuccess(199, 100, 198);
    rec.outageBegin(200);

    // Served one tick past the event and delivered at once: the
    // outage closes immediately and the (near zero-length) downtime
    // stays well-defined and non-negative.
    rec.onSuccess(201, 150, 201);
    ASSERT_EQ(rec.outageRecords().size(), 1u);
    EXPECT_TRUE(rec.outageRecords()[0].closed);
    EXPECT_EQ(rec.outageRecords()[0].firstSuccessAfter, 201u);
    EXPECT_EQ(rec.outageRecords()[0].downtime(), 2u);
}

TEST(Availability, StragglerNarrowsThenRealRecoveryCloses)
{
    AvailabilityRecorder rec(10 * tickMs);
    rec.onSuccess(100, 50, 90);
    rec.outageBegin(200);

    // A pre-event serve delivered after the cut narrows the gap...
    rec.onSuccess(210, 120, 150);
    EXPECT_EQ(rec.outageRecords()[0].lastSuccessBefore, 210u);

    // ...the real recovery closes it...
    rec.onSuccess(260, 230, 250);
    EXPECT_TRUE(rec.outageRecords()[0].closed);
    EXPECT_EQ(rec.outageRecords()[0].downtime(), Tick(260 - 210));

    // ...and an even later straggler can no longer touch it.
    rec.onSuccess(400, 130, 190);
    EXPECT_EQ(rec.outageRecords()[0].lastSuccessBefore, 210u);
    EXPECT_EQ(rec.outageRecords()[0].firstSuccessAfter, 260u);
}

// --- runService end to end -----------------------------------------

ServiceConfig
tinyConfig(PersistMode mode, std::uint64_t seed)
{
    ServiceConfig cfg;
    cfg.mode = mode;
    cfg.runFor = 600 * tickMs;
    cfg.drainGrace = 2500 * tickMs;
    cfg.cuts = 1;
    cfg.offDwell = 50 * tickMs;
    cfg.fleet.clients = 300;
    cfg.fleet.arrivalsPerSec = 1500.0;
    cfg.seed = seed;
    return cfg;
}

TEST(ServicePlane, SnGSmokeHoldsInvariants)
{
    const ServiceConfig cfg = tinyConfig(PersistMode::SnG, 11);
    const ServiceResult r = runService(cfg);

    EXPECT_TRUE(r.violations.empty());
    EXPECT_EQ(r.lostAckedPuts, 0u);
    EXPECT_EQ(r.duplicateApplied, 0u);
    EXPECT_GT(r.completed, 0u);
    EXPECT_GT(r.ackedPuts, 0u);

    ASSERT_EQ(r.outages.size(), 1u);
    EXPECT_LT(r.outages[0].downtime, maxTick);
    EXPECT_FALSE(r.outages[0].coldBoot);
    EXPECT_EQ(r.coldBoots, 0u);

    // The NIC rings rode the DCB: an image per power cycle, and at
    // least one queued frame resurrected (the cut lands under load).
    EXPECT_EQ(r.contextImagesSaved, 1u);
    EXPECT_EQ(r.contextImagesRestored, 1u);
    EXPECT_GE(r.ringPreservedFrames, 1u);
    EXPECT_EQ(r.ringFramesLost, 0u);

    EXPECT_LE(r.maxQueueDepth, cfg.kv.queueCapacity);
    EXPECT_LE(r.maxRxOccupancy, cfg.nic.ringEntries);
    EXPECT_LE(r.maxTxOccupancy, cfg.nic.ringEntries);
}

TEST(ServicePlane, SnGBeatsColdRebootOnClientVisibleDowntime)
{
    const ServiceResult sng =
        runService(tinyConfig(PersistMode::SnG, 13));
    const ServiceResult syspc =
        runService(tinyConfig(PersistMode::SysPc, 13));

    EXPECT_TRUE(sng.violations.empty());
    EXPECT_TRUE(syspc.violations.empty());
    EXPECT_EQ(syspc.coldBoots, 1u);
    ASSERT_EQ(sng.outages.size(), 1u);
    ASSERT_EQ(syspc.outages.size(), 1u);
    EXPECT_LT(sng.worstAttributable, syspc.worstAttributable);
}

TEST(ServicePlane, DeterministicUnderFixedSeed)
{
    const ServiceResult a = runService(tinyConfig(PersistMode::SnG, 17));
    const ServiceResult b = runService(tinyConfig(PersistMode::SnG, 17));
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.ackedPuts, b.ackedPuts);
    ASSERT_EQ(a.outages.size(), b.outages.size());
    for (std::size_t i = 0; i < a.outages.size(); ++i)
        EXPECT_EQ(a.outages[i].downtime, b.outages[i].downtime);

    const ServiceResult c = runService(tinyConfig(PersistMode::SnG, 18));
    EXPECT_NE(a.digest, c.digest);
}

TEST(ServicePlane, OpLogSmokeHoldsInvariants)
{
    const ServiceConfig cfg = tinyConfig(PersistMode::OpLog, 11);
    const ServiceResult r = runService(cfg);

    EXPECT_TRUE(r.violations.empty());
    EXPECT_EQ(r.lostAckedPuts, 0u);
    EXPECT_EQ(r.duplicateApplied, 0u);
    EXPECT_GT(r.completed, 0u);
    EXPECT_GT(r.ackedPuts, 0u);

    // The op-log write path actually carried the PUTs: group commits
    // batched the appends, and the drain (plus any post-cut replay)
    // never applied more than was appended.
    EXPECT_GT(r.logAppends, 0u);
    EXPECT_GT(r.logCommits, 0u);
    EXPECT_LT(r.logCommits, r.logAppends);
    EXPECT_GT(r.logDrainApplied, 0u);
    EXPECT_GE(r.logAppends, r.logDrainApplied + r.logReplayApplied);

    // SnG power machinery underneath: warm resume, rings preserved.
    ASSERT_EQ(r.outages.size(), 1u);
    EXPECT_LT(r.outages[0].downtime, maxTick);
    EXPECT_FALSE(r.outages[0].coldBoot);
    EXPECT_EQ(r.coldBoots, 0u);
    EXPECT_EQ(r.contextImagesSaved, 1u);
    EXPECT_EQ(r.contextImagesRestored, 1u);
    EXPECT_EQ(r.ringFramesLost, 0u);

    EXPECT_LE(r.maxQueueDepth, cfg.kv.queueCapacity);
    EXPECT_LE(r.maxRxOccupancy, cfg.nic.ringEntries);
    EXPECT_LE(r.maxTxOccupancy, cfg.nic.ringEntries);
}

TEST(ServicePlane, OpLogDeterministicUnderFixedSeed)
{
    const ServiceResult a =
        runService(tinyConfig(PersistMode::OpLog, 17));
    const ServiceResult b =
        runService(tinyConfig(PersistMode::OpLog, 17));
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.logAppends, b.logAppends);
    EXPECT_EQ(a.logCommits, b.logCommits);
    ASSERT_EQ(a.outages.size(), b.outages.size());
    for (std::size_t i = 0; i < a.outages.size(); ++i)
        EXPECT_EQ(a.outages[i].downtime, b.outages[i].downtime);

    const ServiceResult c =
        runService(tinyConfig(PersistMode::OpLog, 18));
    EXPECT_NE(a.digest, c.digest);
}

} // namespace
