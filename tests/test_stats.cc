/**
 * @file
 * Unit tests for summaries, histograms, time series, and tables.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "stats/time_series.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::stats;

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.4);
}

TEST(Summary, EmptyIsSafe)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Summary, MergeMatchesPooledMoments)
{
    Summary a, b, pooled;
    for (double v : {2.0, 4.0, 4.0, 4.0})
        a.add(v), pooled.add(v);
    for (double v : {5.0, 5.0, 7.0, 9.0})
        b.add(v), pooled.add(v);
    a.merge(b);
    EXPECT_EQ(a.count(), pooled.count());
    EXPECT_DOUBLE_EQ(a.mean(), pooled.mean());
    EXPECT_NEAR(a.variance(), pooled.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(a.min(), pooled.min());
    EXPECT_DOUBLE_EQ(a.max(), pooled.max());

    Summary empty;
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), a.mean());
    a.merge(Summary{});
    EXPECT_EQ(a.count(), 8u);
}

TEST(Summary, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({1.0, 4.0, 16.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Histogram, CountMeanMinMax)
{
    Histogram h;
    for (std::uint64_t v : {10u, 20u, 30u, 40u})
        h.add(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 25.0);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 40u);
}

TEST(Histogram, PercentilesApproximateWithinBucketResolution)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.add(v);
    // 1/32 relative resolution.
    EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 500.0, 32.0);
    EXPECT_NEAR(static_cast<double>(h.percentile(0.99)), 990.0, 64.0);
    EXPECT_EQ(h.percentile(0.0), 1u);
}

TEST(Histogram, LargeValues)
{
    Histogram h;
    h.add(std::uint64_t(1) << 40);
    h.add(std::uint64_t(1) << 41);
    EXPECT_EQ(h.count(), 2u);
    // Bucket lower bound within 1/32 of the actual value.
    EXPECT_GE(h.percentile(1.0),
              (std::uint64_t(1) << 41) - (std::uint64_t(1) << 36));
}

TEST(Histogram, CvDetectsVariation)
{
    Histogram constant, varying;
    for (int i = 0; i < 100; ++i) {
        constant.add(50);
        varying.add(i % 2 == 0 ? 10 : 100);
    }
    EXPECT_NEAR(constant.cv(), 0.0, 1e-9);
    EXPECT_GT(varying.cv(), 0.5);
}

TEST(Histogram, RejectsBadSubBuckets)
{
    EXPECT_THROW(Histogram(0), FatalError);
    EXPECT_THROW(Histogram(33), FatalError);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.add(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

/**
 * The staging buffer must be invisible: queries issued at arbitrary
 * points — mid-buffer, at the flush boundary, after explicit flush —
 * return exactly what unstaged sequential insertion produces.
 */
TEST(Histogram, StagingIsSequentiallyEquivalent)
{
    Histogram staged, reference;
    std::uint64_t x = 12345;
    for (int i = 0; i < 5000; ++i) {
        // xorshift values spanning several orders of magnitude.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t v = x % 1'000'000;
        staged.add(v);
        reference.add(v);
        reference.flush();  // keep the reference unstaged
        if (i % 313 == 0) {
            // Querying mid-buffer flushes lazily and must agree.
            ASSERT_EQ(staged.count(), reference.count());
            ASSERT_DOUBLE_EQ(staged.mean(), reference.mean());
        }
    }
    staged.flush();
    EXPECT_EQ(staged.count(), reference.count());
    EXPECT_DOUBLE_EQ(staged.mean(), reference.mean());
    EXPECT_DOUBLE_EQ(staged.stddev(), reference.stddev());
    EXPECT_EQ(staged.min(), reference.min());
    EXPECT_EQ(staged.max(), reference.max());
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(staged.percentile(q), reference.percentile(q));
}

TEST(Histogram, CountIncludesStagedSamples)
{
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.add(7);
    // Fewer than stagingCapacity samples: nothing flushed yet, but
    // count() must already see them.
    EXPECT_EQ(h.count(), 100u);
}

/**
 * merge() must be equivalent to having inserted both sample sets
 * into one histogram — the PSM-wide wear distribution is aggregated
 * from per-device histograms this way, and staged samples on either
 * side must not be dropped.
 */
TEST(Histogram, MergeEqualsUnionOfSamples)
{
    Histogram a, b, combined;
    std::uint64_t x = 99;
    for (int i = 0; i < 2000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t v = x % 500'000;
        (i % 2 ? a : b).add(v);
        combined.add(v);
    }
    // Leave both sides with staged samples: merge must flush them.
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
    // The pooled-variance merge reassociates the Welford update, so
    // the moments agree only to rounding.
    EXPECT_NEAR(a.stddev(), combined.stddev(),
                combined.stddev() * 1e-9);
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(a.percentile(q), combined.percentile(q));
}

TEST(Histogram, MergeWithEmptySides)
{
    Histogram filled, empty;
    for (int i = 1; i <= 64; ++i)
        filled.add(static_cast<std::uint64_t>(i));

    Histogram lhs_empty;
    lhs_empty.merge(filled);
    EXPECT_EQ(lhs_empty.count(), 64u);
    EXPECT_EQ(lhs_empty.max(), 64u);

    filled.merge(empty);
    EXPECT_EQ(filled.count(), 64u);
    EXPECT_DOUBLE_EQ(filled.mean(), 32.5);
}

TEST(Histogram, MergeRejectsMismatchedResolution)
{
    Histogram fine(32), coarse(8);
    EXPECT_THROW(fine.merge(coarse), FatalError);
}

TEST(TimeSeries, IntegrateIsAreaUnderCurve)
{
    TimeSeries ts("power");
    ts.record(0, 2.0);
    ts.record(10, 4.0);
    ts.record(20, 4.0);
    // 2.0 * 10 + 4.0 * 10
    EXPECT_DOUBLE_EQ(ts.integrate(), 60.0);
}

TEST(TimeSeries, LastTickTracksNewestSample)
{
    TimeSeries ts("goodput");
    EXPECT_EQ(ts.lastTick(), 0u);
    ts.record(5, 1.0);
    ts.record(5, 2.0);  // equal ticks are allowed
    ts.record(9, 3.0);
    EXPECT_EQ(ts.lastTick(), 9u);
    ts.clear();
    EXPECT_EQ(ts.lastTick(), 0u);
}

TEST(TimeSeriesDeath, DecreasingTickPanics)
{
    TimeSeries ts("ipc");
    ts.record(100, 1.0);
    EXPECT_DEATH(ts.record(99, 2.0), "precedes");
    // The guard fires before the sample lands.
    EXPECT_EQ(ts.samples().size(), 1u);
    EXPECT_EQ(ts.lastTick(), 100u);
}

TEST(TimeSeries, DownsampleBoundsPoints)
{
    TimeSeries ts("ipc");
    for (Tick t = 0; t < 1000; ++t)
        ts.record(t, 1.0);
    const auto down = ts.downsample(10);
    EXPECT_LE(down.size(), 11u);
    for (const auto &s : down)
        EXPECT_DOUBLE_EQ(s.value, 1.0);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::ratio(4.3, 1), "4.3x");
    EXPECT_EQ(Table::percent(0.73), "73%");
}

} // namespace

namespace
{

TEST(Table, CsvOutput)
{
    Table t({"name", "value"});
    t.addRow({"plain", "1"});
    t.addRow({"with,comma", "2"});
    t.addRow({"with\"quote", "3"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(),
              "name,value\n"
              "plain,1\n"
              "\"with,comma\",2\n"
              "\"with\"\"quote\",3\n");
}

} // namespace

// --- merge algebra (the parallel-reduction contract) ---------------
//
// The campaign engine folds per-trial partials in canonical index
// order, but the merge operations themselves must also be
// order-independent and associative so that *any* grouping of
// partials — per-worker pre-merges included — yields one answer.

namespace
{

std::vector<std::vector<double>>
randomChunks(std::uint64_t seed, std::size_t chunks)
{
    lightpc::Rng rng(seed);
    std::vector<std::vector<double>> out(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t n = 1 + rng.below(40);
        for (std::size_t i = 0; i < n; ++i)
            out[c].push_back(rng.uniform() * 1e4 - 5e3);
    }
    return out;
}

Summary
summarize(const std::vector<double> &xs)
{
    Summary s;
    for (const double x : xs)
        s.add(x);
    return s;
}

void
expectSummariesEqual(const Summary &a, const Summary &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_DOUBLE_EQ(a.min(), b.min());
    EXPECT_DOUBLE_EQ(a.max(), b.max());
    EXPECT_NEAR(a.sum(), b.sum(), 1e-6 * std::abs(a.sum()) + 1e-9);
    EXPECT_NEAR(a.mean(), b.mean(),
                1e-9 * std::abs(a.mean()) + 1e-9);
    EXPECT_NEAR(a.variance(), b.variance(),
                1e-6 * a.variance() + 1e-6);
}

TEST(SummaryMerge, OrderIndependent)
{
    const auto chunks = randomChunks(11, 12);

    Summary forward;
    for (const auto &c : chunks)
        forward.merge(summarize(c));

    Summary backward;
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it)
        backward.merge(summarize(*it));

    expectSummariesEqual(forward, backward);
}

TEST(SummaryMerge, AssociativeAndMatchesPooledAdd)
{
    const auto chunks = randomChunks(23, 9);

    // ((a+b)+c)+... — the sequential fold.
    Summary folded;
    for (const auto &c : chunks)
        folded.merge(summarize(c));

    // Pairwise tree — the per-worker pre-merge grouping.
    std::vector<Summary> level;
    for (const auto &c : chunks)
        level.push_back(summarize(c));
    while (level.size() > 1) {
        std::vector<Summary> next;
        for (std::size_t i = 0; i < level.size(); i += 2) {
            Summary s = level[i];
            if (i + 1 < level.size())
                s.merge(level[i + 1]);
            next.push_back(s);
        }
        level = std::move(next);
    }
    expectSummariesEqual(folded, level[0]);

    // And both match adding every sample into one summary.
    Summary pooled;
    for (const auto &c : chunks)
        for (const double x : c)
            pooled.add(x);
    expectSummariesEqual(folded, pooled);
}

TEST(HistogramMerge, OrderIndependentAndAssociativeExactly)
{
    // Bucketed counts are integers: merge in any grouping must be
    // *bit-exact*, percentiles included.
    lightpc::Rng rng(5);
    std::vector<Histogram> parts;
    Histogram forward, backward, tree;
    for (int c = 0; c < 10; ++c) {
        Histogram h;
        const std::size_t n = 1 + rng.below(200);
        for (std::size_t i = 0; i < n; ++i)
            h.add(rng.below(1 << 20));
        parts.push_back(h);
    }

    for (const Histogram &h : parts)
        forward.merge(h);
    for (auto it = parts.rbegin(); it != parts.rend(); ++it)
        backward.merge(*it);

    // Tree grouping: (0+1) + (2+3) + ...
    std::vector<Histogram> level = parts;
    while (level.size() > 1) {
        std::vector<Histogram> next;
        for (std::size_t i = 0; i < level.size(); i += 2) {
            Histogram h = level[i];
            if (i + 1 < level.size())
                h.merge(level[i + 1]);
            next.push_back(h);
        }
        level = std::move(next);
    }
    tree = level[0];

    EXPECT_EQ(forward.count(), backward.count());
    EXPECT_EQ(forward.count(), tree.count());
    EXPECT_DOUBLE_EQ(forward.mean(), backward.mean());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        EXPECT_EQ(forward.percentile(q), backward.percentile(q))
            << "q=" << q;
        EXPECT_EQ(forward.percentile(q), tree.percentile(q))
            << "q=" << q;
    }
    EXPECT_EQ(forward.min(), backward.min());
    EXPECT_EQ(forward.max(), tree.max());
}

TEST(TimeSeriesMerge, InterleavesByTickAndKeepsOrder)
{
    TimeSeries a("a"), b("b");
    a.record(0, 1.0);
    a.record(10, 2.0);
    a.record(20, 3.0);
    b.record(5, 10.0);
    b.record(10, 20.0);
    b.record(30, 30.0);

    a.merge(b);
    ASSERT_EQ(a.samples().size(), 6u);
    Tick prev = 0;
    for (const auto &s : a.samples()) {
        EXPECT_GE(s.when, prev);
        prev = s.when;
    }
    // Tie at tick 10: this trace's sample first (stable merge).
    EXPECT_DOUBLE_EQ(a.samples()[2].value, 2.0);
    EXPECT_DOUBLE_EQ(a.samples()[3].value, 20.0);
    // record() still works after a merge (ordering respected).
    a.record(40, 4.0);
    EXPECT_EQ(a.samples().size(), 7u);
}

TEST(TimeSeriesMerge, EmptySidesAreIdentity)
{
    TimeSeries a("a"), empty("e");
    a.record(1, 1.0);
    a.merge(empty);
    ASSERT_EQ(a.samples().size(), 1u);

    TimeSeries c("c");
    c.merge(a);
    ASSERT_EQ(c.samples().size(), 1u);
    EXPECT_DOUBLE_EQ(c.samples()[0].value, 1.0);
}

} // namespace
