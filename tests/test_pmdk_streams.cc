/**
 * @file
 * Tests for the object-mode / trans-mode instruction-stream
 * decorators (the Fig. 4 software overheads).
 */

#include <gtest/gtest.h>

#include <vector>

#include "platform/pmem_modes.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::platform;

class FixedStream : public cpu::InstrStream
{
  public:
    explicit FixedStream(std::vector<cpu::Instr> instrs)
        : instrs(std::move(instrs))
    {}

    bool
    next(cpu::Instr &out) override
    {
        if (pos >= instrs.size())
            return false;
        out = instrs[pos++];
        return true;
    }

  private:
    std::vector<cpu::Instr> instrs;
    std::size_t pos = 0;
};

std::vector<cpu::Instr>
drain(cpu::InstrStream &stream)
{
    std::vector<cpu::Instr> out;
    cpu::Instr instr;
    while (stream.next(instr))
        out.push_back(instr);
    return out;
}

TEST(ObjectModeStream, PreservesInnerInstructions)
{
    std::vector<cpu::Instr> inner_instrs(
        500, {cpu::InstrKind::Load, 0x1000});
    FixedStream inner(inner_instrs);
    PmdkStreamParams params;
    ObjectModeStream stream(inner, params);
    const auto out = drain(stream);

    std::size_t loads_at_data = 0;
    for (const auto &instr : out)
        loads_at_data += instr.kind == cpu::InstrKind::Load
            && instr.addr == 0x1000;
    EXPECT_EQ(loads_at_data, 500u);
    EXPECT_GT(out.size(), 500u);  // swizzle work added
}

TEST(ObjectModeStream, SwizzleAddsAluAndMetadataLoads)
{
    std::vector<cpu::Instr> inner_instrs(
        5000, {cpu::InstrKind::Load, 0x1000});
    FixedStream inner(inner_instrs);
    PmdkStreamParams params;
    params.swizzleProbability = 0.5;
    ObjectModeStream stream(inner, params);
    const auto out = drain(stream);

    std::size_t alu = 0, metadata_loads = 0;
    for (const auto &instr : out) {
        alu += instr.kind == cpu::InstrKind::Alu;
        metadata_loads += instr.kind == cpu::InstrKind::Load
            && instr.addr >= params.metadataBase;
    }
    // ~2500 swizzles, each: 1 metadata load + (swizzleOps-1) ALU.
    EXPECT_NEAR(static_cast<double>(metadata_loads), 2500.0, 300.0);
    EXPECT_NEAR(static_cast<double>(alu),
                2500.0 * (params.swizzleOps - 1), 25000.0 * 0.15);
}

TEST(ObjectModeStream, AluInstructionsNeverSwizzled)
{
    std::vector<cpu::Instr> inner_instrs(1000,
                                         {cpu::InstrKind::Alu, 0});
    FixedStream inner(inner_instrs);
    PmdkStreamParams params;
    params.swizzleProbability = 1.0;
    ObjectModeStream stream(inner, params);
    EXPECT_EQ(drain(stream).size(), 1000u);
}

TEST(TransModeStream, EveryStoreGetsALogCopy)
{
    std::vector<cpu::Instr> inner_instrs(
        64, {cpu::InstrKind::Store, 0x2000});
    FixedStream inner(inner_instrs);
    PmdkStreamParams params;
    params.swizzleProbability = 0.0;  // isolate the tx machinery
    TransModeStream stream(inner, params);
    const auto out = drain(stream);

    std::size_t data_stores = 0, log_stores = 0;
    for (const auto &instr : out) {
        if (instr.kind != cpu::InstrKind::Store)
            continue;
        if (instr.addr >= params.logBase)
            ++log_stores;
        else
            ++data_stores;
    }
    // 100% write-traffic overhead: one undo-log copy per store.
    EXPECT_EQ(data_stores, 64u);
    EXPECT_EQ(log_stores, 64u);
}

TEST(TransModeStream, CommitsEveryTxStores)
{
    std::vector<cpu::Instr> inner_instrs(
        80, {cpu::InstrKind::Store, 0x2000});
    FixedStream inner(inner_instrs);
    PmdkStreamParams params;
    params.swizzleProbability = 0.0;
    params.txStores = 8;
    TransModeStream stream(inner, params);
    drain(stream);
    EXPECT_EQ(stream.commits(), 10u);
}

TEST(TransModeStream, CommitEmitsFlushWork)
{
    std::vector<cpu::Instr> inner_instrs(
        8, {cpu::InstrKind::Store, 0x2000});
    FixedStream inner(inner_instrs);
    PmdkStreamParams params;
    params.swizzleProbability = 0.0;
    params.txStores = 8;
    TransModeStream stream(inner, params);
    const auto out = drain(stream);

    std::size_t alu = 0;
    for (const auto &instr : out)
        alu += instr.kind == cpu::InstrKind::Alu;
    // pmem_persist: flushOps per line (8 stores + 8 log copies)
    // plus the fence.
    EXPECT_EQ(alu, params.flushOps * 16 + params.fenceOps);
}

TEST(TransModeStream, LoadsPassThroughUntouched)
{
    std::vector<cpu::Instr> inner_instrs(
        100, {cpu::InstrKind::Load, 0x3000});
    FixedStream inner(inner_instrs);
    PmdkStreamParams params;
    params.swizzleProbability = 0.0;
    TransModeStream stream(inner, params);
    const auto out = drain(stream);
    EXPECT_EQ(out.size(), 100u);
    EXPECT_EQ(stream.commits(), 0u);
}

TEST(PmemModeNames, AllNamed)
{
    EXPECT_EQ(pmemModeName(PmemMode::DramOnly), "DRAM-only");
    EXPECT_EQ(pmemModeName(PmemMode::TransMode), "trans-mode");
}

} // namespace
