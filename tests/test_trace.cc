/**
 * @file
 * Tests for trace recording and replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "platform/system.hh"
#include "sim/logging.hh"
#include "workload/spec.hh"
#include "workload/synthetic.hh"
#include "workload/trace.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::workload;

std::vector<cpu::Instr>
drain(cpu::InstrStream &stream)
{
    std::vector<cpu::Instr> out;
    cpu::Instr instr;
    while (stream.next(instr))
        out.push_back(instr);
    return out;
}

TEST(Trace, RoundTripsSmallSequence)
{
    std::stringstream buffer;
    {
        TraceWriter writer(buffer);
        writer.append({cpu::InstrKind::Alu, 0});
        writer.append({cpu::InstrKind::Alu, 0});
        writer.append({cpu::InstrKind::Load, 0x1234});
        writer.append({cpu::InstrKind::Store, 0xbeef00});
        writer.append({cpu::InstrKind::Alu, 0});
        writer.finish();
    }

    TraceStream replay(buffer);
    EXPECT_EQ(replay.totalInstructions(), 5u);
    const auto out = drain(replay);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0].kind, cpu::InstrKind::Alu);
    EXPECT_EQ(out[1].kind, cpu::InstrKind::Alu);
    EXPECT_EQ(out[2].kind, cpu::InstrKind::Load);
    EXPECT_EQ(out[2].addr, 0x1234u);
    EXPECT_EQ(out[3].kind, cpu::InstrKind::Store);
    EXPECT_EQ(out[3].addr, 0xbeef00u);
    EXPECT_EQ(out[4].kind, cpu::InstrKind::Alu);
}

TEST(Trace, AluRunsAreLengthEncoded)
{
    std::stringstream buffer;
    {
        TraceWriter writer(buffer);
        for (int i = 0; i < 1000; ++i)
            writer.append({cpu::InstrKind::Alu, 0});
        writer.finish();
    }
    // One "A 1000" record, not 1000 lines.
    EXPECT_LT(buffer.str().size(), 100u);
    TraceStream replay(buffer);
    EXPECT_EQ(replay.totalInstructions(), 1000u);
    EXPECT_EQ(drain(replay).size(), 1000u);
}

TEST(Trace, RoundTripsSyntheticWorkloadExactly)
{
    SyntheticConfig config;
    config.scaleDivisor = 100000;
    SyntheticStream original(findWorkload("gcc"), config, 0, 1 << 20);
    SyntheticStream reference(findWorkload("gcc"), config, 0,
                              1 << 20);

    std::stringstream buffer;
    TraceWriter writer(buffer);
    const std::uint64_t captured = writer.capture(original);
    EXPECT_EQ(captured, original.totalInstructions());

    TraceStream replay(buffer);
    EXPECT_EQ(replay.totalInstructions(), captured);
    cpu::Instr a, b;
    while (reference.next(a)) {
        ASSERT_TRUE(replay.next(b));
        ASSERT_EQ(a.kind, b.kind);
        if (a.kind != cpu::InstrKind::Alu)
            ASSERT_EQ(a.addr, b.addr);
    }
    EXPECT_FALSE(replay.next(b));
}

TEST(Trace, ReplayDrivesIdenticalSimulation)
{
    // The same workload, once native and once through a trace,
    // must produce identical timing on the platform.
    SyntheticConfig config;
    config.scaleDivisor = 60000;

    auto run_with = [&](cpu::InstrStream &stream) {
        platform::SystemConfig sys_config;
        sys_config.kind = platform::PlatformKind::LightPC;
        platform::System system(sys_config);
        return system.runStreams({&stream}).elapsed;
    };

    SyntheticStream native(findWorkload("Redis"), config, 0,
                           platform::System::workloadBase);
    std::stringstream buffer;
    TraceWriter writer(buffer);
    SyntheticStream to_capture(findWorkload("Redis"), config, 0,
                               platform::System::workloadBase);
    writer.capture(to_capture);
    TraceStream replay(buffer);

    EXPECT_EQ(run_with(native), run_with(replay));
}

TEST(Trace, RewindRestarts)
{
    std::stringstream buffer;
    TraceWriter writer(buffer);
    writer.append({cpu::InstrKind::Load, 0x40});
    writer.append({cpu::InstrKind::Store, 0x80});
    writer.finish();
    TraceStream replay(buffer);
    const auto first = drain(replay);
    replay.rewind();
    const auto second = drain(replay);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].addr, second[i].addr);
}

TEST(Trace, CommentsAndBlankLinesIgnored)
{
    std::stringstream buffer(
        "# a comment\n\nL ff\n# another\nA 3\nS 10\n");
    TraceStream replay(buffer);
    EXPECT_EQ(replay.totalInstructions(), 5u);
}

TEST(Trace, MalformedRecordsRejected)
{
    {
        std::stringstream buffer("X 123\n");
        EXPECT_THROW(TraceStream{buffer}, FatalError);
    }
    {
        std::stringstream buffer("A 0\n");
        EXPECT_THROW(TraceStream{buffer}, FatalError);
    }
    {
        std::stringstream buffer("L\n");
        EXPECT_THROW(TraceStream{buffer}, FatalError);
    }
}

TEST(Trace, FileHelpers)
{
    const std::string path = "/tmp/lightpc_trace_test.txt";
    SyntheticConfig config;
    config.scaleDivisor = 500000;
    SyntheticStream stream(findWorkload("AES"), config, 0, 0);
    const std::uint64_t captured = captureTraceFile(path, stream);
    auto replay = loadTraceFile(path);
    EXPECT_EQ(replay->totalInstructions(), captured);
    EXPECT_THROW(loadTraceFile("/nonexistent/trace"), FatalError);
}

} // namespace
