/**
 * @file
 * Odds and ends: the umbrella header, logging, and small validation
 * paths not covered elsewhere.
 */

#include <gtest/gtest.h>

#include "lightpc.hh"  // the umbrella header must be self-contained

namespace
{

using namespace lightpc;

TEST(UmbrellaHeader, ProvidesTheWholeApi)
{
    // Touch one symbol from each layer to prove the single include
    // suffices.
    EventQueue eq;
    stats::Summary summary;
    mem::BackingStore store;
    psm::XccCodec codec;
    power::PsuModel atx = power::PsuModel::atx();
    kernel::KernelParams kparams;
    workload::SyntheticConfig wconfig;
    platform::SystemConfig sconfig;
    (void)eq;
    (void)summary;
    (void)store;
    (void)codec;
    (void)kparams;
    (void)wconfig;
    (void)sconfig;
    EXPECT_GT(atx.spec().storedJoules, 0.0);
    EXPECT_EQ(workload::tableTwo().size(), 17u);
}

TEST(Logging, FatalThrowsWithMessage)
{
    try {
        fatal("bad ", 42, " config");
        FAIL() << "fatal() returned";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "bad 42 config");
    }
}

TEST(Logging, QuietModeSuppressesOutput)
{
    setLogQuiet(true);
    ::testing::internal::CaptureStderr();
    warn("should not appear");
    EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
    setLogQuiet(false);
    ::testing::internal::CaptureStderr();
    warn("should appear");
    EXPECT_FALSE(::testing::internal::GetCapturedStderr().empty());
}

TEST(Validation, SyntheticConfigRejectsZeroScale)
{
    workload::SyntheticConfig config;
    config.scaleDivisor = 0;
    EXPECT_THROW(workload::SyntheticStream(
                     workload::findWorkload("AES"), config, 0, 0),
                 FatalError);
}

TEST(Validation, PsmRejectsSillyRowBuffer)
{
    psm::PsmParams params;
    params.rowBufferBytes = 32;  // less than one line
    EXPECT_THROW(psm::Psm{params}, FatalError);
    params.rowBufferBytes = 128 * 64;  // 128 lines > 64-bit mask
    EXPECT_THROW(psm::Psm{params}, FatalError);
}

TEST(Validation, MemRequestLineAddr)
{
    mem::MemRequest req;
    req.addr = 0x12345;
    EXPECT_EQ(req.lineAddr(), 0x12340u);
}

TEST(Validation, KernelRejectsZeroCores)
{
    kernel::KernelParams params;
    params.cores = 0;
    EXPECT_THROW(kernel::Kernel{params}, FatalError);
}

} // namespace
