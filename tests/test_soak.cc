/**
 * @file
 * Soak test: randomized end-to-end sequences of execution, power
 * cycles, and device faults, with invariants checked throughout.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "platform/system.hh"
#include "sim/rng.hh"
#include "workload/spec.hh"
#include "workload/synthetic.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::platform;

class Soak : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Soak, RandomizedLifecycle)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    SystemConfig config;
    config.kind = rng.chance(0.5) ? PlatformKind::LightPC
                                  : PlatformKind::LegacyPC;
    config.scaleDivisor = 40000;
    config.seed = seed;
    psm::PsmParams params =
        psmParamsFor(config.kind, config.pmemDimms);
    params.symbolEccFallback = rng.chance(0.5);
    config.psmParams = params;
    System system(config);

    // Enable the symbol fallback on half the runs and poke a fault.
    if (params.symbolEccFallback && rng.chance(0.7)) {
        system.psm().injectFault(
            static_cast<std::uint32_t>(rng.below(6)),
            static_cast<std::uint32_t>(rng.below(4)),
            static_cast<std::uint32_t>(rng.below(2)));
    }

    const auto &table = workload::tableTwo();
    Tick t = system.eventQueue().now();

    for (int phase = 0; phase < 4; ++phase) {
        // Run a random workload fragment.
        const auto &spec = table[rng.below(table.size())];
        workload::SyntheticConfig wconfig;
        wconfig.scaleDivisor = config.scaleDivisor;
        wconfig.seed = rng.next();
        auto streams = workload::makeStreams(
            spec, wconfig, system.coreCount(), System::workloadBase);
        for (std::size_t i = 0; i < streams.size(); ++i)
            system.core(static_cast<std::uint32_t>(i))
                .run(*streams[i], t);

        // Run fully or cut it short with a power event.
        const bool powerfail = rng.chance(0.6);
        if (powerfail) {
            system.eventQueue().run(t + rng.below(2 * tickMs));
            for (std::uint32_t c = 0; c < system.coreCount(); ++c)
                system.core(c).stop();
        } else {
            system.eventQueue().run();
        }
        t = std::max(system.eventQueue().now(), t);

        if (powerfail) {
            system.kernel().scramble(rng);
            const auto before = system.kernel().snapshot();
            const auto stop = system.sng().stop(t);
            ASSERT_LE(stop.totalTicks(), 20 * tickMs)
                << "Stop blew past any plausible hold-up";
            ASSERT_EQ(stop.tasksParked,
                      system.kernel().processCount());
            const auto go =
                system.sng().resume(stop.offlineDone + tickMs);
            ASSERT_FALSE(go.coldBoot);
            const auto after = system.kernel().snapshot();
            for (std::size_t i = 0; i < before.entries.size(); ++i)
                ASSERT_EQ(before.entries[i].regs,
                          after.entries[i].regs);
            t = go.done;
        }

        // Memory-system invariants hold at every phase boundary.
        const auto &stats = system.psm().stats();
        if (params.symbolEccFallback) {
            EXPECT_EQ(stats.mceCount, 0u)
                << "fallback-enabled runs must never contain";
        }
        const Tick quiescent = system.eventQueue().now() < t
            ? t : system.eventQueue().now();
        const Tick fenced = system.psm().flush(quiescent);
        EXPECT_GE(fenced, quiescent);
        t = fenced + tickUs;
    }

    // Wear accounting stays coherent.
    for (std::uint32_t d = 0; d < config.pmemDimms; ++d) {
        auto &dimm = system.psm().dimm(d);
        for (std::uint32_t g = 0; g < dimm.groupCount(); ++g) {
            const auto &dev = dimm.group(g);
            std::uint64_t sum = 0;
            for (const auto w : dev.wearByRegion())
                sum += w;
            EXPECT_EQ(sum, dev.writeCount());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak,
                         ::testing::Values(101, 202, 303, 404, 505,
                                           606));

} // namespace
