/**
 * @file
 * Compound-failure engine: Stop/Go sub-phase cut classification, the
 * aborted-stop (brownout resume-in-place) path, resume idempotence
 * under torn Go, the recovery supervisor's convergence and livelock
 * escalation, and the campaign invariant check.
 */

#include <gtest/gtest.h>

#include "fault/compound.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "pecos/sng.hh"
#include "psm/psm.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using fault::RecoverySupervisor;
using fault::SupervisorConfig;
using fault::SupervisorOutcome;
using pecos::GoSubPhase;
using pecos::StopSubPhase;

struct Rig
{
    kernel::Kernel kern;
    psm::Psm psm;
    mem::BackingStore store;
    pecos::Sng sng{kern, psm, store, {}};
};

/** Deterministic dry-run Stop timeline (fresh rig, no cut). */
pecos::StopReport
dryStop()
{
    Rig rig;
    return rig.sng.stop(0);
}

// --- sub-phase classification --------------------------------------

TEST(StopSubPhases, BoundariesAreOrdered)
{
    const pecos::StopReport r = dryStop();
    EXPECT_LT(r.start, r.processStopDone);
    EXPECT_LT(r.processStopDone, r.ctxSaveDone);
    EXPECT_LT(r.ctxSaveDone, r.deviceStopDone);
    EXPECT_LT(r.deviceStopDone, r.workerOfflineDone);
    EXPECT_LE(r.workerOfflineDone, r.commitStart);
    EXPECT_LT(r.commitStart, r.commitAt);
    EXPECT_EQ(r.cutSubPhase, StopSubPhase::None);
}

TEST(StopSubPhases, CutIsClassifiedByDrainWindow)
{
    const pecos::StopReport dry = dryStop();
    const struct { Tick at; StopSubPhase want; } cases[] = {
        {dry.processStopDone / 2, StopSubPhase::DriveToIdle},
        {(dry.processStopDone + dry.ctxSaveDone) / 2,
         StopSubPhase::DeviceContextSave},
        {(dry.ctxSaveDone + dry.deviceStopDone) / 2,
         StopSubPhase::MasterCacheFlush},
        {(dry.deviceStopDone + dry.workerOfflineDone) / 2,
         StopSubPhase::WorkerOffline},
        {(dry.workerOfflineDone + dry.commitStart) / 2,
         StopSubPhase::BootloaderDump},
        {(dry.commitStart + dry.commitAt) / 2,
         StopSubPhase::CommitWindow},
        {dry.commitAt + 1000, StopSubPhase::PostCommit},
    };
    for (const auto &c : cases) {
        Rig rig;
        rig.store.armPowerCut(c.at, 1);
        const pecos::StopReport r = rig.sng.stop(0);
        EXPECT_EQ(r.cutSubPhase, c.want)
            << "cut at " << c.at << ": got "
            << pecos::stopSubPhaseName(r.cutSubPhase);
        // Durability matches the window: only cuts at or past the
        // commit completion leave the EP-cut durable.
        rig.store.disarmPowerCut();
        EXPECT_EQ(rig.sng.hasCommit(), r.commitAt < c.at);
    }
}

TEST(GoSubPhases, InterruptedMatchesCommitClearVsCut)
{
    // A cut one tick before the commit-clear completes tears the
    // resume; one tick after, the resume converged.
    Rig dry;
    dry.sng.stop(0);
    const pecos::GoReport clean = dry.sng.resume(1 * tickSec);
    ASSERT_FALSE(clean.coldBoot);
    EXPECT_EQ(clean.cutSubPhase, GoSubPhase::None);

    for (const Tick off : {Tick(0), Tick(1)}) {
        Rig rig;
        rig.sng.stop(0);
        rig.store.armPowerCut(clean.commitClearAt + off, 2);
        const pecos::GoReport r = rig.sng.resume(1 * tickSec);
        rig.store.disarmPowerCut();
        if (off == 0) {
            EXPECT_TRUE(r.interrupted);
            EXPECT_EQ(r.cutSubPhase, GoSubPhase::CommitClear);
            EXPECT_TRUE(rig.sng.hasCommit())
                << "a torn resume must leave the EP-cut valid";
        } else {
            EXPECT_FALSE(r.interrupted);
            EXPECT_EQ(r.cutSubPhase, GoSubPhase::Complete);
            EXPECT_FALSE(rig.sng.hasCommit());
        }
    }
}

// --- resume idempotence --------------------------------------------

TEST(GoIdempotence, TornResumeReplaysByteIdentical)
{
    // Reference: stop, scramble, resume once, uninterrupted.
    Rig ref;
    ref.sng.stop(0);
    Rng refScramble(77);
    ref.kern.scramble(refScramble);
    const pecos::GoReport clean = ref.sng.resume(1 * tickSec);
    const std::uint64_t want =
        fault::machineStateDigest(ref.kern, ref.store);

    // Trial: identical machine, resume torn mid device-restore, the
    // volatile side lost again, then the resume replayed.
    Rig rig;
    rig.sng.stop(0);
    Rng scramble(78);
    rig.kern.scramble(scramble);
    const Tick cut = (clean.coresUp + clean.devicesResumed) / 2;
    rig.store.armPowerCut(cut, 3);
    const pecos::GoReport torn = rig.sng.resume(1 * tickSec);
    rig.store.disarmPowerCut();
    ASSERT_TRUE(torn.interrupted);
    EXPECT_EQ(torn.cutSubPhase, GoSubPhase::DeviceRestore);
    ASSERT_TRUE(rig.sng.hasCommit());

    rig.kern.scramble(scramble);
    const pecos::GoReport redo = rig.sng.resume(2 * tickSec);
    EXPECT_FALSE(redo.coldBoot);
    EXPECT_FALSE(redo.interrupted);
    EXPECT_EQ(fault::machineStateDigest(rig.kern, rig.store), want);
}

TEST(GoIdempotence, DigestSeesVolatileCorruption)
{
    Rig rig;
    const std::uint64_t before =
        fault::machineStateDigest(rig.kern, rig.store);
    Rng rng(5);
    rig.kern.scramble(rng);
    EXPECT_NE(fault::machineStateDigest(rig.kern, rig.store), before);
}

// --- aborted stop (brownout recovered in place) --------------------

TEST(AbortStop, RevivesTheMachineWithoutReboot)
{
    Rig rig;
    const kernel::SystemSnapshot before = rig.kern.snapshot();
    const pecos::StopReport stop = rig.sng.stop(0);
    ASSERT_TRUE(rig.sng.hasCommit());
    ASSERT_EQ(rig.kern.devices().suspendedCount(),
              rig.kern.devices().count());

    const pecos::AbortReport abort =
        rig.sng.abortStop(stop.offlineDone + 1000);

    EXPECT_TRUE(abort.commitCleared);
    EXPECT_FALSE(rig.sng.hasCommit())
        << "a stale EP-cut would describe a state the continuing"
           " execution immediately diverges from";
    EXPECT_EQ(rig.kern.devices().suspendedCount(), 0u);
    EXPECT_EQ(abort.devicesRevived, stop.devicesSuspended);
    EXPECT_EQ(abort.tasksUnparked, stop.tasksParked);
    EXPECT_GT(abort.done, abort.start);

    // Registers and device cookies are untouched by the round trip.
    const kernel::SystemSnapshot after = rig.kern.snapshot();
    ASSERT_EQ(after.entries.size(), before.entries.size());
    for (std::size_t p = 0; p < after.entries.size(); ++p) {
        EXPECT_EQ(after.entries[p].pid, before.entries[p].pid);
        EXPECT_TRUE(after.entries[p].regs == before.entries[p].regs);
    }
    EXPECT_EQ(after.deviceCookies, before.deviceCookies);
}

TEST(AbortStop, MachineStillPersistsAfterwards)
{
    Rig rig;
    const pecos::StopReport s1 = rig.sng.stop(0);
    rig.sng.abortStop(s1.offlineDone + 1000);

    const kernel::SystemSnapshot mid = rig.kern.snapshot();
    const pecos::StopReport s2 = rig.sng.stop(1 * tickSec);
    Rng rng(9);
    rig.kern.scramble(rng);
    const pecos::GoReport go =
        rig.sng.resume(s2.offlineDone + 100 * tickMs);
    ASSERT_FALSE(go.coldBoot);

    const kernel::SystemSnapshot after = rig.kern.snapshot();
    ASSERT_EQ(after.entries.size(), mid.entries.size());
    for (std::size_t p = 0; p < after.entries.size(); ++p)
        EXPECT_TRUE(after.entries[p].regs == mid.entries[p].regs);
}

// --- recovery supervisor -------------------------------------------

TEST(Supervisor, ConvergesFirstTryWithoutCuts)
{
    Rig rig;
    rig.sng.stop(0);
    Rng rng(1);
    rig.kern.scramble(rng);
    RecoverySupervisor sup(rig.sng, rig.kern, rig.store);
    const SupervisorOutcome out =
        sup.supervise(100 * tickMs, {}, rng);
    EXPECT_TRUE(out.converged);
    EXPECT_FALSE(out.coldBoot);
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(out.livelocks, 0u);
    EXPECT_FALSE(rig.store.powerCutArmed());
    // The never-fired watchdog must not poison the epoch floor.
    EXPECT_LT(rig.store.epochFloor(), 100 * tickMs);
}

TEST(Supervisor, RetriesThroughExternalCutsThenConverges)
{
    Rig rig;
    const kernel::SystemSnapshot before = rig.kern.snapshot();
    rig.sng.stop(0);
    Rng rng(2);
    rig.kern.scramble(rng);

    // Two cuts landing inside the first two resume attempts (a Go
    // takes a few ms; the capped backoff re-spaces each retry).
    const Tick start = 100 * tickMs;
    SupervisorConfig cfg;
    const std::vector<Tick> cuts = {
        start + tickMs,
        start + tickMs + cfg.retryBackoff + tickMs,
    };
    RecoverySupervisor sup(rig.sng, rig.kern, rig.store, cfg);
    const SupervisorOutcome out = sup.supervise(start, cuts, rng);

    EXPECT_TRUE(out.converged);
    EXPECT_FALSE(out.coldBoot);
    EXPECT_EQ(out.attempts, 3u);
    EXPECT_EQ(out.cutsConsumed, 2u);
    EXPECT_EQ(out.livelocks, 0u);

    const kernel::SystemSnapshot after = rig.kern.snapshot();
    for (std::size_t p = 0; p < after.entries.size(); ++p)
        EXPECT_TRUE(after.entries[p].regs == before.entries[p].regs);
}

TEST(Supervisor, ColdBootsWhenNothingIsDurable)
{
    Rig rig;  // never stopped: no commit
    Rng rng(3);
    RecoverySupervisor sup(rig.sng, rig.kern, rig.store);
    const SupervisorOutcome out =
        sup.supervise(100 * tickMs, {}, rng);
    EXPECT_TRUE(out.converged);
    EXPECT_TRUE(out.coldBoot);
    EXPECT_FALSE(out.degradedColdBoot);
    EXPECT_EQ(out.attempts, 1u);
}

TEST(Supervisor, EscalatesToDegradedColdBootAfterKLivelocks)
{
    Rig rig;
    rig.sng.stop(0);
    Rng rng(4);
    rig.kern.scramble(rng);

    // A deadline far below the real Go latency: every attempt hangs
    // past its watchdog and is reset. After K attempts the image is
    // invalidated and the machine boots cold — degraded but
    // converged.
    SupervisorConfig cfg;
    cfg.resumeDeadline = 10 * tickUs;
    cfg.maxAttempts = 3;
    RecoverySupervisor sup(rig.sng, rig.kern, rig.store, cfg);
    const SupervisorOutcome out =
        sup.supervise(100 * tickMs, {}, rng);

    EXPECT_TRUE(out.converged);
    EXPECT_TRUE(out.coldBoot);
    EXPECT_TRUE(out.degradedColdBoot);
    EXPECT_EQ(out.attempts, cfg.maxAttempts);
    EXPECT_EQ(out.livelocks, cfg.maxAttempts);
    EXPECT_EQ(out.cutsConsumed, 0u);
    EXPECT_FALSE(rig.sng.hasCommit())
        << "escalation must invalidate the livelocked image";
    EXPECT_FALSE(rig.store.powerCutArmed());
}

// --- campaign ------------------------------------------------------

TEST(CompoundCampaign, SmallRunHoldsEveryInvariant)
{
    fault::CompoundConfig cfg;
    cfg.trials = 48;
    cfg.seed = 7;
    const fault::CompoundResult r = fault::runCompoundCampaign(cfg);

    for (const std::string &note : r.violationNotes)
        ADD_FAILURE() << note;
    EXPECT_EQ(r.violations, 0u);
    EXPECT_EQ(r.trials, cfg.trials);
    EXPECT_EQ(r.stopCutTrials + r.goCutTrials + r.brownoutTrials
                  + r.stormTrials + r.oplogTrials,
              cfg.trials);
    EXPECT_GT(r.tornResumes, 0u);
    EXPECT_EQ(r.idempotenceChecks, r.goCutTrials);
    EXPECT_GE(r.maxCutEpochs, 3u);

    // The fifth rotation ran: every op-log trial proved both copies
    // replay byte-identical, and at least one scan hit a torn tail.
    EXPECT_GT(r.oplogTrials, 0u);
    EXPECT_EQ(r.oplogReplayChecks, r.oplogTrials);
    EXPECT_GT(r.oplogRecordsReplayed, 0u);
    EXPECT_GT(r.oplogTornTails, 0u);

    // Determinism: the same seed reproduces the same digest.
    const fault::CompoundResult again = fault::runCompoundCampaign(cfg);
    EXPECT_EQ(again.digest, r.digest);

    // A different seed moves it.
    cfg.seed = 8;
    const fault::CompoundResult moved = fault::runCompoundCampaign(cfg);
    EXPECT_NE(moved.digest, r.digest);
}

} // namespace
