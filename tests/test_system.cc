/**
 * @file
 * Unit tests for the platform System assembly itself.
 */

#include <gtest/gtest.h>

#include "platform/system.hh"
#include "sim/logging.hh"
#include "workload/spec.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::platform;

SystemConfig
configFor(PlatformKind kind)
{
    SystemConfig config;
    config.kind = kind;
    return config;
}

TEST(System, PlatformNames)
{
    EXPECT_EQ(platformName(PlatformKind::LegacyPC), "LegacyPC");
    EXPECT_EQ(platformName(PlatformKind::LightPCB), "LightPC-B");
    EXPECT_EQ(platformName(PlatformKind::LightPC), "LightPC");
}

TEST(System, LegacyHasDramOthersDoNot)
{
    System legacy(configFor(PlatformKind::LegacyPC));
    System light(configFor(PlatformKind::LightPC));
    EXPECT_NE(legacy.dram(), nullptr);
    EXPECT_EQ(light.dram(), nullptr);
}

TEST(System, KindSelectsPsmFeatures)
{
    System b(configFor(PlatformKind::LightPCB));
    System light(configFor(PlatformKind::LightPC));
    EXPECT_FALSE(b.psm().params().eccReconstruction);
    EXPECT_FALSE(b.psm().params().earlyReturnWrites);
    EXPECT_TRUE(light.psm().params().eccReconstruction);
}

TEST(System, PsmOverrideWins)
{
    psm::PsmParams params =
        psmParamsFor(PlatformKind::LightPC, 6);
    params.busLatency = 123 * tickNs;
    SystemConfig config;
    config.psmParams = params;
    System system(config);
    EXPECT_EQ(system.psm().params().busLatency, 123 * tickNs);
}

TEST(System, LegacyRoutesPmemWindowToPsm)
{
    System system(configFor(PlatformKind::LegacyPC));
    mem::MemRequest req;
    req.op = mem::MemOp::Write;
    req.addr = System::pmemWindowBase + 64;
    system.memoryPort().access(req, 0);
    EXPECT_EQ(system.psm().stats().writes, 1u);
    EXPECT_EQ(system.dram()->totalAccesses(), 0u);

    req.addr = 4096;  // below the window -> DRAM
    system.memoryPort().access(req, 0);
    EXPECT_EQ(system.dram()->totalAccesses(), 1u);
}

TEST(System, LightPcRoutesEverythingToPsm)
{
    System system(configFor(PlatformKind::LightPC));
    mem::MemRequest req;
    req.op = mem::MemOp::Read;
    req.addr = 4096;
    system.memoryPort().access(req, 0);
    EXPECT_EQ(system.psm().stats().reads, 1u);
}

TEST(System, FenceReachesThePsmFlushPort)
{
    System system(configFor(PlatformKind::LightPC));
    mem::MemRequest req;
    req.op = mem::MemOp::Write;
    req.addr = 0;
    system.memoryPort().access(req, 0);
    const Tick quiescent = system.memoryPort().fence(100);
    EXPECT_GT(quiescent, 100u);
    EXPECT_EQ(system.psm().stats().flushes, 1u);
}

TEST(System, RunRejectsBadStreamCounts)
{
    SystemConfig two_cores;
    two_cores.cores = 2;
    System system(two_cores);
    EXPECT_THROW(system.runStreams({}), FatalError);
}

TEST(System, CollectFillsResultFields)
{
    SystemConfig config;
    config.scaleDivisor = 60000;
    System system(config);
    const auto result =
        system.run(workload::findWorkload("SHA512"));
    EXPECT_EQ(result.platform, "LightPC");
    EXPECT_EQ(result.workload, "SHA512");
    EXPECT_GT(result.elapsed, 0u);
    EXPECT_GT(result.instructions, 0u);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.watts, 0.0);
    EXPECT_GT(result.joules, 0.0);
    EXPECT_GT(result.loadHitRate, 0.9);  // SHA512: 99.9%
}

TEST(System, ActivityUtilizationBounded)
{
    SystemConfig config;
    config.scaleDivisor = 60000;
    System system(config);
    system.run(workload::findWorkload("AES"));
    const auto sample =
        system.activity(system.eventQueue().now(), 1);
    EXPECT_GE(sample.coreUtilization, 0.0);
    EXPECT_LE(sample.coreUtilization, 1.0);
    EXPECT_EQ(sample.coresActive + sample.coresIdle,
              system.coreCount());
}

TEST(System, FrequencyConfigPropagates)
{
    SystemConfig config;
    config.freqMhz = 400;  // the FPGA configuration
    System system(config);
    EXPECT_EQ(system.core(0).clock().mhz(), 400u);
    EXPECT_EQ(system.core(0).clock().period(), 2500u);
}

TEST(System, ZeroCoresRejected)
{
    SystemConfig config;
    config.cores = 0;
    EXPECT_THROW(System{config}, FatalError);
}

} // namespace
