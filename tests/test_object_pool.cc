/**
 * @file
 * Unit and crash-consistency property tests for the persistent
 * object pool.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "mem/backing_store.hh"
#include "persist/object_pool.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::persist;

constexpr std::uint64_t poolSize = 8 << 20;

TEST(ObjectPool, FormatsFreshPool)
{
    mem::BackingStore store;
    ObjectPool pool(store, 0, poolSize);
    EXPECT_FALSE(pool.openedExisting());
    EXPECT_EQ(pool.allocatedBytes(), 0u);
}

TEST(ObjectPool, ReopensExistingPool)
{
    mem::BackingStore store;
    Tick t = 0;
    ObjectId oid;
    {
        ObjectPool pool(store, 0, poolSize);
        oid = pool.allocate(t, 100);
        pool.writeObject(oid, 0, "hello", 6);
    }
    ObjectPool reopened(store, 0, poolSize);
    EXPECT_TRUE(reopened.openedExisting());
    char buf[6];
    reopened.readObject(oid, 0, buf, 6);
    EXPECT_STREQ(buf, "hello");
}

TEST(ObjectPool, RootIsStable)
{
    mem::BackingStore store;
    Tick t = 0;
    ObjectPool pool(store, 0, poolSize);
    const ObjectId a = pool.root(t, 256);
    const ObjectId b = pool.root(t, 256);
    EXPECT_EQ(a, b);
    ObjectPool reopened(store, 0, poolSize);
    EXPECT_EQ(reopened.root(t, 256), a);
}

TEST(ObjectPool, AllocateDistinctObjects)
{
    mem::BackingStore store;
    Tick t = 0;
    ObjectPool pool(store, 0, poolSize);
    const ObjectId a = pool.allocate(t, 64);
    const ObjectId b = pool.allocate(t, 64);
    EXPECT_NE(a.offset, b.offset);
    EXPECT_GE(pool.sizeOf(a), 64u);
    Tick t2 = 0;
    const mem::Addr pa = pool.direct(t2, a);
    const mem::Addr pb = pool.direct(t2, b);
    EXPECT_GE(pb > pa ? pb - pa : pa - pb, 64u);
    EXPECT_GT(t2, 0u);  // swizzling costs time
}

TEST(ObjectPool, FreeListReusesSpace)
{
    mem::BackingStore store;
    Tick t = 0;
    ObjectPool pool(store, 0, poolSize);
    const ObjectId a = pool.allocate(t, 128);
    pool.free(t, a);
    const ObjectId b = pool.allocate(t, 128);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(pool.stats().frees, 1u);
}

TEST(ObjectPool, AllocatedBytesTracked)
{
    mem::BackingStore store;
    Tick t = 0;
    ObjectPool pool(store, 0, poolSize);
    const ObjectId a = pool.allocate(t, 100);
    EXPECT_EQ(pool.allocatedBytes(), 112u);  // rounded to 16
    pool.free(t, a);
    EXPECT_EQ(pool.allocatedBytes(), 0u);
}

TEST(ObjectPool, CommittedTransactionPersists)
{
    mem::BackingStore store;
    Tick t = 0;
    ObjectPool pool(store, 0, poolSize);
    const ObjectId oid = pool.allocate(t, 64);
    const std::uint64_t before = 111, after = 222;
    pool.writeObject(oid, 0, &before, 8);

    pool.txBegin(t);
    pool.txAddRange(t, oid, 0, 8);
    pool.writeObject(oid, 0, &after, 8);
    pool.txCommit(t);

    ObjectPool reopened(store, 0, poolSize);
    std::uint64_t value = 0;
    reopened.readObject(oid, 0, &value, 8);
    EXPECT_EQ(value, after);
    EXPECT_EQ(reopened.stats().recoveries, 0u);
}

TEST(ObjectPool, CrashMidTransactionRollsBack)
{
    mem::BackingStore store;
    Tick t = 0;
    ObjectId oid;
    {
        ObjectPool pool(store, 0, poolSize);
        oid = pool.allocate(t, 64);
        const std::uint64_t before = 111, partial = 999;
        pool.writeObject(oid, 0, &before, 8);
        pool.txBegin(t);
        pool.txAddRange(t, oid, 0, 8);
        pool.writeObject(oid, 0, &partial, 8);
        pool.crash();  // power failure before commit
    }
    ObjectPool recovered(store, 0, poolSize);
    EXPECT_EQ(recovered.stats().recoveries, 1u);
    std::uint64_t value = 0;
    recovered.readObject(oid, 0, &value, 8);
    EXPECT_EQ(value, 111u);
}

TEST(ObjectPool, AbortRestoresOldContents)
{
    mem::BackingStore store;
    Tick t = 0;
    ObjectPool pool(store, 0, poolSize);
    const ObjectId oid = pool.allocate(t, 64);
    const std::uint32_t before = 7;
    pool.writeObject(oid, 0, &before, 4);
    pool.txBegin(t);
    pool.txAddRange(t, oid, 0, 4);
    const std::uint32_t scratch = 12345;
    pool.writeObject(oid, 0, &scratch, 4);
    pool.txAbort(t);
    std::uint32_t value = 0;
    pool.readObject(oid, 0, &value, 4);
    EXPECT_EQ(value, 7u);
    EXPECT_FALSE(pool.inTransaction());
}

TEST(ObjectPool, CommitCostsScaleWithRangeSize)
{
    mem::BackingStore store;
    ObjectPool pool(store, 0, poolSize);
    Tick t_small = 0, t_large = 0;

    const ObjectId small = pool.allocate(t_small, 64);
    pool.txBegin(t_small);
    Tick mark = t_small;
    pool.txAddRange(t_small, small, 0, 64);
    pool.txCommit(t_small);
    const Tick small_cost = t_small - mark;

    const ObjectId large = pool.allocate(t_large, 64 * 64);
    pool.txBegin(t_large);
    mark = t_large;
    pool.txAddRange(t_large, large, 0, 64 * 64);
    pool.txCommit(t_large);
    const Tick large_cost = t_large - mark;

    EXPECT_GT(large_cost, 10 * small_cost);
    EXPECT_GE(pool.stats().linesFlushed, 65u);
}

TEST(ObjectPool, NestedTransactionsRejected)
{
    mem::BackingStore store;
    Tick t = 0;
    ObjectPool pool(store, 0, poolSize);
    pool.txBegin(t);
    EXPECT_THROW(pool.txBegin(t), FatalError);
    pool.txCommit(t);
    EXPECT_THROW(pool.txCommit(t), FatalError);
}

TEST(ObjectPool, RejectsTinyRegion)
{
    mem::BackingStore store;
    EXPECT_THROW(ObjectPool(store, 0, 4096), FatalError);
}

/** Property: a linked list built in transactions survives a crash at
 *  any point with prefix-consistency (committed nodes intact). */
class ObjectPoolCrash : public ::testing::TestWithParam<int>
{
};

TEST_P(ObjectPoolCrash, LinkedListPrefixConsistency)
{
    const int crash_after = GetParam();
    mem::BackingStore store;
    Tick t = 0;

    struct Node
    {
        std::uint64_t value;
        ObjectId next;
    };

    int committed = 0;
    {
        ObjectPool pool(store, 0, poolSize);
        const ObjectId root = pool.root(t, sizeof(ObjectId));

        ObjectId head{};
        for (int i = 0; i < 20; ++i) {
            pool.txBegin(t);
            const ObjectId node = pool.allocate(t, sizeof(Node));
            Node n;
            n.value = 1000 + i;
            n.next = head;
            pool.txAddRange(t, node, 0, sizeof(Node));
            pool.writeObject(node, 0, &n, sizeof(Node));
            pool.txAddRange(t, root, 0, sizeof(ObjectId));
            pool.writeObject(root, 0, &node, sizeof(ObjectId));
            if (i == crash_after) {
                pool.crash();
                break;
            }
            pool.txCommit(t);
            head = node;
            ++committed;
        }
    }

    // Recover and walk the list: exactly `committed` nodes, values
    // in insertion order, no torn node.
    ObjectPool pool(store, 0, poolSize);
    const ObjectId root = pool.root(t, sizeof(ObjectId));
    ObjectId cursor;
    pool.readObject(root, 0, &cursor, sizeof(ObjectId));
    int count = 0;
    std::uint64_t expect = 1000 + committed - 1;
    while (cursor.valid()) {
        Node n;
        pool.readObject(cursor, 0, &n, sizeof(Node));
        EXPECT_EQ(n.value, expect);
        --expect;
        cursor = n.next;
        ++count;
        ASSERT_LE(count, 20);
    }
    EXPECT_EQ(count, committed);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, ObjectPoolCrash,
                         ::testing::Range(0, 20, 3));

} // namespace
