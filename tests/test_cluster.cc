/**
 * @file
 * Replicated-KV cluster: config validation, rack-correlated storm
 * schedules, concurrent per-replica recovery supervision, fleet
 * availability merging, client jitter streams, and the cluster /
 * campaign end-to-end invariants (no lost acked PUTs, no split
 * brain, mode separation, determinism).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cluster/cluster.hh"
#include "fault/cluster_campaign.hh"
#include "fault/compound.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "net/availability.hh"
#include "net/client_fleet.hh"
#include "pecos/sng.hh"
#include "psm/psm.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using cluster::ClusterConfig;
using cluster::ClusterResult;
using fault::CorrelatedStorm;
using fault::CutStorm;
using fault::RecoverySupervisor;
using fault::SupervisorConfig;
using fault::SupervisorOutcome;

// --- ClusterConfig validation --------------------------------------

ClusterConfig
validConfig()
{
    ClusterConfig cfg;  // defaults are a valid 3-replica cluster
    return cfg;
}

TEST(ClusterConfigValidation, DefaultsPass)
{
    EXPECT_NO_THROW(cluster::validateClusterConfig(validConfig()));
}

TEST(ClusterConfigValidation, RejectsDegenerateFleetShape)
{
    ClusterConfig cfg = validConfig();
    cfg.replicas = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.replicas = 65;  // vote/ack masks are 64-wide
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.racks = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.racks = cfg.replicas + 1;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);
}

TEST(ClusterConfigValidation, RejectsDegenerateStorms)
{
    ClusterConfig cfg = validConfig();
    cfg.stormRackSpan = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.stormRackSpan = cfg.racks + 1;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.storms = 1;
    cfg.stormWindow = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.storms = 1;
    cfg.offDwell = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    // ...but a stormless run needs neither window nor dwell.
    cfg = validConfig();
    cfg.storms = 0;
    cfg.stormWindow = 0;
    cfg.offDwell = 0;
    EXPECT_NO_THROW(cluster::validateClusterConfig(cfg));
}

TEST(ClusterConfigValidation, RejectsDegenerateControlPlane)
{
    ClusterConfig cfg = validConfig();
    cfg.heartbeatInterval = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    // An election timeout a heartbeat can't beat elects forever.
    cfg = validConfig();
    cfg.electionTimeout = cfg.heartbeatInterval;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.linkGbitPerSec = 0.0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.replRecordBytes = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.journalRetain = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.supervisor.maxAttempts = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);
}

TEST(ClusterConfigValidation, RejectsDegenerateServiceKnobs)
{
    ClusterConfig cfg = validConfig();
    cfg.runFor = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.goodputWindow = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.fleet.clients = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.fleet.arrivalsPerSec = 0.0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.fleet.maxAttempts = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.nic.ringEntries = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);

    cfg = validConfig();
    cfg.kv.queueCapacity = 0;
    EXPECT_THROW(cluster::validateClusterConfig(cfg), FatalError);
}

// --- ServiceConfig validation (single-node plane) ------------------

TEST(ServiceConfigValidation, RejectsEveryDegenerateKnob)
{
    auto reject = [](auto &&mutate) {
        net::ServiceConfig cfg;
        mutate(cfg);
        EXPECT_THROW(net::validateServiceConfig(cfg), FatalError);
    };
    EXPECT_NO_THROW(net::validateServiceConfig(net::ServiceConfig{}));
    reject([](net::ServiceConfig &c) { c.fleet.clients = 0; });
    reject([](net::ServiceConfig &c) { c.fleet.arrivalsPerSec = 0.0; });
    reject([](net::ServiceConfig &c) { c.fleet.maxAttempts = 0; });
    reject([](net::ServiceConfig &c) { c.nic.ringEntries = 0; });
    reject([](net::ServiceConfig &c) { c.kv.queueCapacity = 0; });
    reject([](net::ServiceConfig &c) { c.runFor = 0; });
    reject([](net::ServiceConfig &c) { c.goodputWindow = 0; });
    reject([](net::ServiceConfig &c) {
        c.cuts = 0;
        c.stormFollowUps = 2;
    });
    reject([](net::ServiceConfig &c) {
        c.cuts = 100;
        c.runFor = 50;
    });
}

// --- CutStorm rack correlation -------------------------------------

TEST(CorrelatedStorms, RackAssignmentIsContiguousAndComplete)
{
    // 3 replicas over 2 racks: rack 0 holds the majority {0, 1}.
    EXPECT_EQ(CutStorm::rackOf(0, 3, 2), 0u);
    EXPECT_EQ(CutStorm::rackOf(1, 3, 2), 0u);
    EXPECT_EQ(CutStorm::rackOf(2, 3, 2), 1u);

    // Every rack is populated, assignments are monotone.
    for (std::uint32_t replicas = 1; replicas <= 8; ++replicas) {
        for (std::uint32_t racks = 1; racks <= replicas; ++racks) {
            std::vector<bool> seen(racks, false);
            std::uint32_t prev = 0;
            for (std::uint32_t r = 0; r < replicas; ++r) {
                const std::uint32_t rack =
                    CutStorm::rackOf(r, replicas, racks);
                ASSERT_LT(rack, racks);
                EXPECT_GE(rack, prev);
                prev = rack;
                seen[rack] = true;
            }
            EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                                    [](bool b) { return b; }));
        }
    }
}

TEST(CorrelatedStorms, ScheduleIsAPureFunctionOfTheSeed)
{
    CutStorm a(77), b(77), c(78);
    const auto argsRun = [](CutStorm &gen) {
        return gen.correlated(100 * tickMs, 900 * tickMs, 3, 5, 2, 1,
                              8 * tickMs);
    };
    const std::vector<CorrelatedStorm> s1 = argsRun(a);
    const std::vector<CorrelatedStorm> s2 = argsRun(b);
    const std::vector<CorrelatedStorm> s3 = argsRun(c);

    ASSERT_EQ(s1.size(), s2.size());
    for (std::size_t i = 0; i < s1.size(); ++i) {
        EXPECT_EQ(s1[i].startAt, s2[i].startAt);
        EXPECT_EQ(s1[i].racks, s2[i].racks);
        ASSERT_EQ(s1[i].cuts.size(), s2[i].cuts.size());
        for (std::size_t j = 0; j < s1[i].cuts.size(); ++j) {
            EXPECT_EQ(s1[i].cuts[j].replica, s2[i].cuts[j].replica);
            EXPECT_EQ(s1[i].cuts[j].at, s2[i].cuts[j].at);
        }
    }
    // A different seed moves at least one cut instant.
    bool differs = s1.size() != s3.size();
    for (std::size_t i = 0; !differs && i < s1.size(); ++i)
        differs = s1[i].startAt != s3[i].startAt
                  || s1[i].cuts.size() != s3[i].cuts.size()
                  || (s1[i].cuts.size() == s3[i].cuts.size()
                      && !std::equal(
                          s1[i].cuts.begin(), s1[i].cuts.end(),
                          s3[i].cuts.begin(),
                          [](const fault::ReplicaCut &x,
                             const fault::ReplicaCut &y) {
                              return x.at == y.at
                                     && x.replica == y.replica;
                          }));
    EXPECT_TRUE(differs);
}

TEST(CorrelatedStorms, FirstStormStrikesTheBootstrapRackInWindow)
{
    CutStorm gen(5);
    const std::vector<CorrelatedStorm> storms =
        gen.correlated(200 * tickMs, 1800 * tickMs, 2, 3, 2, 1,
                       8 * tickMs);
    ASSERT_EQ(storms.size(), 2u);

    // First storm targets rack 0 — the bootstrap leader's rack.
    ASSERT_EQ(storms[0].racks.size(), 1u);
    EXPECT_EQ(storms[0].racks[0], 0u);

    for (const CorrelatedStorm &s : storms) {
        EXPECT_GE(s.startAt, 200 * tickMs);
        for (const fault::ReplicaCut &cut : s.cuts) {
            // Every cut inside the storm window, and only replicas
            // living in a struck rack take one.
            EXPECT_GE(cut.at, s.startAt);
            EXPECT_LT(cut.at, s.startAt + 8 * tickMs);
            const std::uint32_t rack =
                CutStorm::rackOf(cut.replica, 3, 2);
            EXPECT_TRUE(std::count(s.racks.begin(), s.racks.end(),
                                   rack) == 1);
        }
        // Struck racks contribute all their replicas exactly once.
        std::size_t expected = 0;
        for (std::uint32_t r = 0; r < 3; ++r)
            if (std::count(s.racks.begin(), s.racks.end(),
                           CutStorm::rackOf(r, 3, 2)))
                ++expected;
        EXPECT_EQ(s.cuts.size(), expected);
    }
}

// --- concurrent multi-replica recovery supervision -----------------

struct SupRig
{
    kernel::Kernel kern;
    psm::Psm psm;
    mem::BackingStore store;
    pecos::Sng sng{kern, psm, store, {}};
};

/**
 * Three replicas struck inside one storm window, each supervised
 * independently; a follow-up cut lands inside every first resume
 * attempt, so each supervisor retries through its capped backoff.
 */
TEST(ConcurrentRecovery, StormWindowReplicasConvergeIndependently)
{
    CutStorm gen(9);
    const std::vector<CorrelatedStorm> storms =
        gen.correlated(100 * tickMs, 200 * tickMs, 1, 3, 3, 3,
                       8 * tickMs);
    ASSERT_EQ(storms.size(), 1u);
    ASSERT_EQ(storms[0].cuts.size(), 3u);

    std::vector<SupervisorOutcome> outs(3);
    std::vector<std::uint64_t> digests(3);
    for (std::size_t i = 0; i < 3; ++i) {
        const fault::ReplicaCut &cut = storms[0].cuts[i];
        SupRig rig;
        rig.sng.stop(0);
        Rng rng(Rng::streamSeed(31, cut.replica));
        rig.kern.scramble(rng);
        RecoverySupervisor sup(rig.sng, rig.kern, rig.store);
        // The follow-up cut lands 1 ms into the first resume.
        outs[i] = sup.supervise(cut.at, {cut.at + tickMs}, rng);
        digests[i] =
            fault::machineStateDigest(rig.kern, rig.store);

        EXPECT_TRUE(outs[i].converged);
        EXPECT_FALSE(outs[i].coldBoot);
        EXPECT_EQ(outs[i].attempts, 2u);
        EXPECT_EQ(outs[i].cutsConsumed, 1u);
        // The retry waited out at least the first backoff rung.
        EXPECT_GE(outs[i].convergedAt,
                  cut.at + SupervisorConfig{}.retryBackoff);
    }

    // Re-supervise the same storm in reverse order: each replica's
    // outcome and final machine state must be byte-identical — the
    // supervisors share nothing.
    for (std::size_t i = 0; i < 3; ++i) {
        const std::size_t j = 2 - i;
        const fault::ReplicaCut &cut = storms[0].cuts[j];
        SupRig rig;
        rig.sng.stop(0);
        Rng rng(Rng::streamSeed(31, cut.replica));
        rig.kern.scramble(rng);
        RecoverySupervisor sup(rig.sng, rig.kern, rig.store);
        const SupervisorOutcome out =
            sup.supervise(cut.at, {cut.at + tickMs}, rng);
        EXPECT_EQ(out.attempts, outs[j].attempts);
        EXPECT_EQ(out.convergedAt, outs[j].convergedAt);
        EXPECT_EQ(fault::machineStateDigest(rig.kern, rig.store),
                  digests[j]);
    }
}

TEST(ConcurrentRecovery, OneLivelockedReplicaEscalatesAlone)
{
    // Replica 1's watchdog deadline is impossibly tight: it must
    // escalate to a degraded cold boot without disturbing its
    // neighbours' warm convergence.
    for (std::uint32_t id = 0; id < 3; ++id) {
        SupRig rig;
        rig.sng.stop(0);
        Rng rng(Rng::streamSeed(47, id));
        rig.kern.scramble(rng);
        SupervisorConfig cfg;
        if (id == 1) {
            cfg.resumeDeadline = 10 * tickUs;
            cfg.maxAttempts = 2;
        }
        RecoverySupervisor sup(rig.sng, rig.kern, rig.store, cfg);
        const SupervisorOutcome out =
            sup.supervise(150 * tickMs, {}, rng);
        EXPECT_TRUE(out.converged);
        if (id == 1) {
            EXPECT_TRUE(out.degradedColdBoot);
            EXPECT_EQ(out.livelocks, 2u);
            EXPECT_FALSE(rig.sng.hasCommit());
        } else {
            EXPECT_FALSE(out.coldBoot);
            EXPECT_EQ(out.attempts, 1u);
        }
    }
}

// --- AvailabilityRecorder::merge order independence ----------------

net::AvailabilityRecorder
replicaView(std::uint64_t salt)
{
    net::AvailabilityRecorder rec(10 * tickMs);
    Rng rng(Rng::streamSeed(12, salt));
    Tick now = tickMs + salt * 17;
    for (int i = 0; i < 40; ++i) {
        const Tick issued = now - rng.below(2 * tickMs) - 1;
        rec.onSuccess(now, issued, now - rng.below(tickMs));
        if (i == 15 || i == 30)
            rec.outageBegin(now + 1);
        now += tickMs + rng.below(3 * tickMs);
    }
    return rec;
}

TEST(AvailabilityMerge, FoldOrderDoesNotChangeTheMergedView)
{
    // Fold three replica recorders in two different orders; the
    // merged outage ledger, latency summary, and last-success stamp
    // must not depend on the order.
    const std::vector<std::vector<std::uint64_t>> orders = {
        {0, 1, 2}, {2, 0, 1}};
    std::vector<net::AvailabilityRecorder> merged;
    for (const auto &order : orders) {
        net::AvailabilityRecorder acc(10 * tickMs);
        for (const std::uint64_t id : order) {
            const net::AvailabilityRecorder view = replicaView(id);
            acc.merge(view);
        }
        merged.push_back(acc);
    }

    const auto &a = merged[0];
    const auto &b = merged[1];
    EXPECT_EQ(a.lastSuccessAt(), b.lastSuccessAt());
    EXPECT_DOUBLE_EQ(a.latencySummaryUs().mean(),
                     b.latencySummaryUs().mean());
    ASSERT_EQ(a.outageRecords().size(), b.outageRecords().size());
    for (std::size_t i = 0; i < a.outageRecords().size(); ++i) {
        EXPECT_EQ(a.outageRecords()[i].eventAt,
                  b.outageRecords()[i].eventAt);
        EXPECT_EQ(a.outageRecords()[i].lastSuccessBefore,
                  b.outageRecords()[i].lastSuccessBefore);
        EXPECT_EQ(a.outageRecords()[i].firstSuccessAfter,
                  b.outageRecords()[i].firstSuccessAfter);
        EXPECT_EQ(a.outageRecords()[i].closed,
                  b.outageRecords()[i].closed);
    }
}

TEST(AvailabilityMerge, MismatchedWindowsAreFatal)
{
    net::AvailabilityRecorder a(10 * tickMs);
    const net::AvailabilityRecorder b(20 * tickMs);
    EXPECT_THROW(a.merge(b), FatalError);
}

// --- per-client jitter streams -------------------------------------

TEST(ClientJitter, TimeoutStreamsAreSeededPerClient)
{
    net::FleetParams params;
    params.retryJitter = 5 * tickMs;
    params.seed = 1234;

    // Same seed, same draw sequence: bit-identical timeouts.
    net::ClientFleet a(params), b(params);
    std::vector<Tick> firstPass;
    for (std::uint32_t client = 0; client < 8; ++client)
        for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
            const Tick ta = a.timeoutFor(client, attempt);
            EXPECT_EQ(ta, b.timeoutFor(client, attempt));
            firstPass.push_back(ta);
        }

    // Re-drawing the same (client, attempt) sweep advances both
    // streams in lockstep; the jitter must actually move somewhere.
    bool anyJitter = false;
    std::size_t at = 0;
    for (std::uint32_t client = 0; client < 8; ++client)
        for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
            const Tick ta = a.timeoutFor(client, attempt);
            EXPECT_EQ(ta, b.timeoutFor(client, attempt));
            anyJitter = anyJitter || ta != firstPass[at++];
        }

    // Draw-order independence: client 7's stream is its own, so
    // burning client 3's stream first must not shift client 7's
    // draws (the lockstep-retry regression).
    net::ClientFleet fresh(params), burned(params);
    for (int i = 0; i < 10; ++i)
        (void)burned.timeoutFor(3, 2);
    for (std::uint32_t attempt = 1; attempt <= 4; ++attempt)
        EXPECT_EQ(fresh.timeoutFor(7, attempt),
                  burned.timeoutFor(7, attempt));

    // And the jitter actually jitters somewhere in the sweep.
    EXPECT_TRUE(anyJitter);
}

TEST(ClientJitter, DistinctClientsDecorrelate)
{
    net::FleetParams params;
    params.retryJitter = 8 * tickMs;
    params.seed = 99;
    net::ClientFleet fleet(params);

    // With 8 ms of jitter, 16 clients drawing the same attempt all
    // landing on one tick would mean the streams collapsed.
    std::vector<Tick> first;
    for (std::uint32_t client = 0; client < 16; ++client)
        first.push_back(fleet.timeoutFor(client, 2));
    const bool allEqual =
        std::all_of(first.begin(), first.end(),
                    [&](Tick t) { return t == first[0]; });
    EXPECT_FALSE(allEqual);
}

// --- cluster end to end --------------------------------------------

ClusterConfig
tinyCluster(net::PersistMode mode, std::size_t storms,
            std::uint64_t seed)
{
    ClusterConfig cfg;
    cfg.mode = mode;
    cfg.replicas = 3;
    cfg.racks = 2;
    cfg.storms = storms;
    cfg.runFor = 800 * tickMs;
    cfg.drainGrace = 2500 * tickMs;
    cfg.fleet.clients = 80;
    cfg.fleet.arrivalsPerSec = 1200.0;
    cfg.userProcesses = 6;
    cfg.kernelThreads = 4;
    cfg.deviceCount = 12;
    cfg.seed = seed;
    return cfg;
}

TEST(ClusterPlane, CalmFleetHoldsInvariantsInEveryMode)
{
    const net::PersistMode modes[] = {
        net::PersistMode::SnG,      net::PersistMode::OpLog,
        net::PersistMode::SysPc,    net::PersistMode::SCheckPc,
        net::PersistMode::ACheckPc,
    };
    for (const net::PersistMode mode : modes) {
        const ClusterResult r =
            cluster::runCluster(tinyCluster(mode, 0, 21));
        EXPECT_EQ(r.cutsInjected, 0u) << r.modeName;
        EXPECT_TRUE(r.violations.empty()) << r.modeName;
        EXPECT_EQ(r.lostAckedPuts, 0u) << r.modeName;
        EXPECT_EQ(r.splitBrainEpochs, 0u) << r.modeName;
        EXPECT_EQ(r.divergentCommits, 0u) << r.modeName;
        EXPECT_GT(r.completed, 0u) << r.modeName;
        EXPECT_GT(r.ackedPuts, 0u) << r.modeName;
        EXPECT_EQ(r.coldBoots, 0u) << r.modeName;
        EXPECT_DOUBLE_EQ(r.readAvailability, 1.0) << r.modeName;
        if (mode == net::PersistMode::SCheckPc) {
            // An S-CheckPC leader stalls the whole machine for each
            // periodic dump — longer than the election timeout, so
            // its silence reads as death and the fleet churns
            // leaders even on a calm day. The invariants hold; the
            // write availability pays for the churn.
            EXPECT_GT(r.leaderChanges, 1u) << r.modeName;
            EXPECT_GT(r.writeAvailability, 0.5) << r.modeName;
        } else {
            // Exactly the bootstrap election; no churn without
            // storms.
            EXPECT_EQ(r.leaderChanges, 1u) << r.modeName;
            EXPECT_GT(r.writeAvailability, 0.99) << r.modeName;
        }
    }
}

TEST(ClusterPlane, StormFailoverKeepsDurabilityAndElectsLeaders)
{
    const ClusterResult r = cluster::runCluster(
        tinyCluster(net::PersistMode::SnG, 2, 33));
    EXPECT_GT(r.cutsInjected, 0u);
    EXPECT_GT(r.elections, 1u);      // failover actually happened
    EXPECT_GT(r.leaderChanges, 1u);
    EXPECT_TRUE(r.violations.empty());
    EXPECT_EQ(r.lostAckedPuts, 0u);
    EXPECT_EQ(r.splitBrainEpochs, 0u);
    EXPECT_EQ(r.divergentCommits, 0u);
    EXPECT_EQ(r.coldBoots, 0u);      // SnG rode the storms warm
    EXPECT_GT(r.resumes, 0u);
    EXPECT_GT(r.syncDeltas, 0u);     // rejoin was a delta, not a copy
    EXPECT_EQ(r.syncFulls, 0u);
}

TEST(ClusterPlane, SnGOutlivesColdBootingBaselineUnderOneStormSeed)
{
    const ClusterResult sng = cluster::runCluster(
        tinyCluster(net::PersistMode::SnG, 2, 33));
    const ClusterResult syspc = cluster::runCluster(
        tinyCluster(net::PersistMode::SysPc, 2, 33));

    // The identical storm schedule replayed against both modes.
    EXPECT_EQ(sng.cutsInjected, syspc.cutsInjected);
    EXPECT_GT(syspc.coldBoots, 0u);
    EXPECT_GT(sng.writeAvailability, syspc.writeAvailability);
    EXPECT_LT(sng.worstWriteGap, syspc.worstWriteGap);
    EXPECT_TRUE(syspc.violations.empty());
    EXPECT_EQ(syspc.lostAckedPuts, 0u);
}

TEST(ClusterPlane, QuorumLossDegradesToReadOnlyNotDark)
{
    // Intensity-3 shape: both racks struck, the whole fleet rides
    // one storm — writes pause, reads outlive them.
    ClusterConfig cfg = tinyCluster(net::PersistMode::SnG, 1, 52);
    cfg.stormRackSpan = 2;
    const ClusterResult r = cluster::runCluster(cfg);
    EXPECT_GT(r.readOnlySpans, 0u);
    EXPECT_GT(r.readAvailability, r.writeAvailability);
    EXPECT_TRUE(r.violations.empty());
    EXPECT_EQ(r.lostAckedPuts, 0u);
}

TEST(ClusterPlane, ColdBootingLeadersNeverRegressTheDurableTail)
{
    // SysPC cold-boots on every cut, so this is the regression
    // stress for the becomeLeader watermark: a new leader adopts
    // the previous epoch's staged tail (records possibly committed
    // and client-acked under that epoch), is struck before the
    // re-commit, and must still find the records after recovery —
    // they stay mirrored in the durable staged map, never moved
    // into volatile pendingOps.
    for (const std::uint64_t seed : {33ull, 52ull, 63ull}) {
        const ClusterResult r = cluster::runCluster(
            tinyCluster(net::PersistMode::SysPc, 2, seed));
        EXPECT_GT(r.cutsInjected, 0u) << seed;
        EXPECT_GT(r.coldBoots, 0u) << seed;
        EXPECT_EQ(r.lostAckedPuts, 0u) << seed;
        EXPECT_EQ(r.splitBrainEpochs, 0u) << seed;
        EXPECT_EQ(r.divergentCommits, 0u) << seed;
        EXPECT_TRUE(r.violations.empty()) << seed;
    }
}

TEST(ClusterPlane, DeterministicUnderFixedSeed)
{
    const ClusterResult a = cluster::runCluster(
        tinyCluster(net::PersistMode::OpLog, 2, 63));
    const ClusterResult b = cluster::runCluster(
        tinyCluster(net::PersistMode::OpLog, 2, 63));
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.elections, b.elections);
    EXPECT_EQ(a.writeUnavailableTicks, b.writeUnavailableTicks);
}

// --- campaign ------------------------------------------------------

fault::ClusterCampaignConfig
tinyCampaign()
{
    fault::ClusterCampaignConfig cfg;
    cfg.seed = 7;
    cfg.seedsPerCell = 1;
    cfg.replicaCounts = {3};
    cfg.intensities = {2};
    cfg.modes = {net::PersistMode::SnG, net::PersistMode::SysPc};
    cfg.runFor = 600 * tickMs;
    cfg.drainGrace = 2200 * tickMs;
    cfg.clients = 60;
    cfg.arrivalsPerSec = 1000.0;
    return cfg;
}

TEST(ClusterCampaign, TrialConfigIsAPureFunctionOfTheIndex)
{
    const fault::ClusterCampaignConfig cfg = tinyCampaign();
    EXPECT_EQ(fault::clusterCampaignTrials(cfg), 2u);
    const ClusterConfig a = fault::clusterTrialConfig(cfg, 1);
    const ClusterConfig b = fault::clusterTrialConfig(cfg, 1);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.mode, b.mode);
    EXPECT_EQ(a.replicas, b.replicas);

    // Modes within one cell column share the seed (paired storms).
    const ClusterConfig sng = fault::clusterTrialConfig(cfg, 0);
    EXPECT_EQ(sng.seed, a.seed);
    EXPECT_NE(sng.mode, a.mode);

    EXPECT_THROW(fault::clusterTrialConfig(cfg, 2), FatalError);
}

TEST(ClusterCampaign, SeedColumnsDoNotCollidePastTheOldPacking)
{
    // The old packing gave seedIdx 64 slots before it bled into the
    // neighbouring intensity column; sweep past that boundary and
    // require every (intensity, seedIdx) stream to stay distinct.
    fault::ClusterCampaignConfig cfg = tinyCampaign();
    cfg.seedsPerCell = 70;
    cfg.intensities = {1, 2, 3};
    cfg.modes = {net::PersistMode::SnG};
    const std::uint64_t trials = fault::clusterCampaignTrials(cfg);
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < trials; ++i)
        seeds.insert(fault::clusterTrialConfig(cfg, i).seed);
    EXPECT_EQ(seeds.size(), trials);  // one mode: all trials distinct

    // Bounds on the packed fields are enforced, not assumed.
    cfg = tinyCampaign();
    cfg.seedsPerCell = (std::uint64_t(1) << 32) + 1;
    EXPECT_THROW(fault::clusterTrialConfig(cfg, 0), FatalError);
}

TEST(ClusterCampaign, ThreadCountDoesNotChangeTheDigest)
{
    fault::ClusterCampaignConfig cfg = tinyCampaign();
    cfg.threads = 1;
    const fault::ClusterCampaignResult one =
        fault::runClusterCampaign(cfg);
    cfg.threads = 2;
    const fault::ClusterCampaignResult two =
        fault::runClusterCampaign(cfg);

    EXPECT_EQ(one.digest, two.digest);
    EXPECT_EQ(one.trials, 2u);
    EXPECT_EQ(one.lostAckedPuts, 0u);
    EXPECT_EQ(one.splitBrainEpochs, 0u);
    EXPECT_EQ(one.divergentCommits, 0u);
    EXPECT_EQ(one.violations, 0u);
    ASSERT_EQ(one.cells.size(), 2u);
    // SnG above the cold-booting baseline even in one paired seed.
    EXPECT_GT(one.cells[0].writeAvailMean,
              one.cells[1].writeAvailMean);
}

TEST(ClusterCampaign, RejectsDegenerateSweeps)
{
    fault::ClusterCampaignConfig cfg = tinyCampaign();
    cfg.seedsPerCell = 0;
    EXPECT_THROW(fault::runClusterCampaign(cfg), FatalError);

    cfg = tinyCampaign();
    cfg.intensities = {4};
    EXPECT_THROW(fault::runClusterCampaign(cfg), FatalError);

    cfg = tinyCampaign();
    cfg.modes.clear();
    EXPECT_THROW(fault::runClusterCampaign(cfg), FatalError);

    cfg = tinyCampaign();
    cfg.clients = 0;
    EXPECT_THROW(fault::runClusterCampaign(cfg), FatalError);
}

} // namespace
