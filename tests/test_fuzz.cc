/**
 * @file
 * Randomized fuzzing of stateful components whose invariants must
 * hold for arbitrary operation sequences: the persistent object
 * pool's allocator, the event queue's schedule/cancel machinery, and
 * the full RAS pipeline under composed media faults and power cuts.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "fault/ras_campaign.hh"
#include "mem/backing_store.hh"
#include "net/service_plane.hh"
#include "persist/object_pool.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::persist;

class AllocatorFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AllocatorFuzz, RandomAllocFreeKeepsContentsIntact)
{
    Rng rng(GetParam());
    mem::BackingStore store;
    ObjectPool pool(store, 0, 8 << 20);
    Tick t = 0;

    // Live objects with their expected fill pattern.
    std::map<std::uint64_t, std::pair<ObjectId, std::uint8_t>> live;
    std::uint64_t next_tag = 1;

    for (int op = 0; op < 2000; ++op) {
        const bool do_alloc = live.size() < 4 || rng.chance(0.55);
        if (do_alloc) {
            const std::uint64_t bytes = rng.between(1, 4096);
            const ObjectId oid = pool.allocate(t, bytes);
            ASSERT_TRUE(oid.valid());
            ASSERT_GE(pool.sizeOf(oid), bytes);
            const auto tag =
                static_cast<std::uint8_t>(next_tag * 37 + 11);
            std::vector<std::uint8_t> fill(bytes, tag);
            pool.writeObject(oid, 0, fill.data(), bytes);
            live[next_tag++] = {oid, tag};
        } else {
            auto it = live.begin();
            std::advance(it,
                         static_cast<long>(rng.below(live.size())));
            pool.free(t, it->second.first);
            live.erase(it);
        }

        // Spot-check a random survivor for corruption.
        if (!live.empty() && rng.chance(0.2)) {
            auto it = live.begin();
            std::advance(it,
                         static_cast<long>(rng.below(live.size())));
            std::uint8_t byte = 0;
            pool.readObject(it->second.first, 0, &byte, 1);
            ASSERT_EQ(byte, it->second.second)
                << "object corrupted after op " << op;
        }
    }

    // Full verification of every survivor.
    for (const auto &[tag, entry] : live) {
        const std::uint64_t bytes = pool.sizeOf(entry.first);
        std::vector<std::uint8_t> back(bytes);
        pool.readObject(entry.first, 0, back.data(), bytes);
        // Only the originally-written prefix is guaranteed; the
        // allocator rounds sizes up, so check the first byte and a
        // middle byte of the written range.
        EXPECT_EQ(back[0], entry.second);
    }

    // Reopen: the allocator metadata itself must be durable.
    ObjectPool reopened(store, 0, 8 << 20);
    EXPECT_TRUE(reopened.openedExisting());
    for (const auto &[tag, entry] : live) {
        std::uint8_t byte = 0;
        reopened.readObject(entry.first, 0, &byte, 1);
        EXPECT_EQ(byte, entry.second);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzz,
                         ::testing::Values(11, 22, 33, 44));

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EventQueueFuzz, ScheduleCancelOrderInvariant)
{
    Rng rng(GetParam());
    EventQueue eq;

    // Fire times must be observed in non-decreasing order, and
    // cancelled events must never fire.
    Tick last_fired = 0;
    std::uint64_t fired = 0;
    std::vector<std::pair<EventId, bool>> cancelled_flags;
    std::vector<EventId> pending;
    std::uint64_t scheduled = 0, cancelled = 0;

    std::function<void(Tick)> schedule_one = [&](Tick when) {
        const EventId id = eq.schedule(when, [&, when] {
            ASSERT_GE(when, last_fired);
            last_fired = when;
            ++fired;
            // Occasionally schedule follow-up work from inside an
            // event.
            if (rng.chance(0.3) && scheduled < 3000) {
                ++scheduled;
                schedule_one(when + 1 + rng.below(1000));
            }
        });
        pending.push_back(id);
    };

    for (int i = 0; i < 1000; ++i) {
        ++scheduled;
        schedule_one(1 + rng.below(100000));
        if (!pending.empty() && rng.chance(0.25)) {
            const std::size_t idx = rng.below(pending.size());
            eq.deschedule(pending[idx]);
            pending.erase(pending.begin()
                          + static_cast<long>(idx));
            ++cancelled;
        }
    }

    eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_LE(fired, scheduled - cancelled);
    EXPECT_GE(fired + cancelled, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(7, 77, 777));

class RasFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * Compose the two fault models: high-BER media faults plus
 * wear-driven stuck bits during demand traffic, then a power cut
 * armed during half the SnG stops. Whatever the seed, the pipeline
 * must hold both invariants at once — zero silent data corruption
 * (every decode checked against ground truth) and exact durability
 * (resume iff the commit point landed before the cut).
 */
TEST_P(RasFuzz, CombinedPowerCutAndMediaFaultsHoldInvariants)
{
    fault::RasCampaignConfig config;
    config.seed = GetParam();
    config.bers = {1e-4, 1e-3};
    config.wearLevels = {0.9};
    config.seedsPerCell = 2;
    config.opsPerTrial = 400;
    config.powerCutEvery = 2;

    const fault::RasCampaignResult r = fault::runRasCampaign(config);

    EXPECT_EQ(r.trials, 8u);
    EXPECT_GT(r.checkedReads, 0u);
    EXPECT_EQ(r.sdcEvents, 0u);
    for (const std::string &note : r.violationNotes)
        ADD_FAILURE() << note;
    EXPECT_EQ(r.violations, 0u);
    EXPECT_GT(r.cutTrials, 0u);
    EXPECT_EQ(r.resumes + r.coldBootResumes, r.trials);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RasFuzz,
                         ::testing::Values(3, 212, 4099));

class ServiceFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * Live KV traffic with power cuts landing at seed-random points
 * mid-flight (the plane probes each cut onto a busy instant, and the
 * seed moves where the busy instants are). Whatever the seed and
 * persistence mode, the service-level invariants must hold: no
 * acknowledged PUT lost, no PUT double-applied under retries that
 * race the cut, and every bounded queue within its capacity.
 */
TEST_P(ServiceFuzz, TrafficAndPowerCutsHoldInvariants)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    net::ServiceConfig cfg;
    const net::PersistMode modes[] = {
        net::PersistMode::SnG, net::PersistMode::OpLog,
        net::PersistMode::SysPc, net::PersistMode::SCheckPc,
        net::PersistMode::ACheckPc};
    cfg.mode = modes[rng.below(5)];
    cfg.runFor = (300 + rng.below(400)) * tickMs;
    cfg.drainGrace = 2500 * tickMs;
    cfg.cuts = 1 + static_cast<std::uint32_t>(rng.below(2));
    cfg.offDwell = 50 * tickMs;
    cfg.fleet.clients = 200;
    cfg.fleet.arrivalsPerSec = 1000.0;
    cfg.seed = seed;

    const net::ServiceResult r = net::runService(cfg);

    for (const std::string &note : r.violations)
        ADD_FAILURE() << r.modeName << ": " << note;
    EXPECT_EQ(r.lostAckedPuts, 0u) << r.modeName;
    EXPECT_EQ(r.duplicateApplied, 0u) << r.modeName;
    EXPECT_EQ(r.outages.size(), cfg.cuts) << r.modeName;
    EXPECT_GT(r.completed, 0u) << r.modeName;

    // Bounded queues stayed bounded.
    EXPECT_LE(r.maxQueueDepth, cfg.kv.queueCapacity);
    EXPECT_LE(r.maxRxOccupancy, cfg.nic.ringEntries);
    EXPECT_LE(r.maxTxOccupancy, cfg.nic.ringEntries);

    // SnG (either write path) never cold-boots; every baseline
    // outage costs one.
    if (cfg.mode == net::PersistMode::SnG
        || cfg.mode == net::PersistMode::OpLog)
        EXPECT_EQ(r.coldBoots, 0u);
    else
        EXPECT_EQ(r.coldBoots, r.outages.size()) << r.modeName;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceFuzz,
                         ::testing::Values(7, 101, 555, 2025, 31337,
                                           900913));

class ServiceStormFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * Seeded random cut *storms*: after each scheduled cut, follow-up
 * cuts chase the recovery and land as soon as the service is back
 * up. Whatever the spacing and persistence mode, no acknowledged PUT
 * may be lost, no PUT double-applied, and every outage — including
 * the ones that interrupt a recovery — must converge to a served
 * request again.
 */
TEST_P(ServiceStormFuzz, StormSchedulesHoldInvariantsInEveryMode)
{
    const std::uint64_t seed = GetParam();
    const net::PersistMode modes[] = {
        net::PersistMode::SnG, net::PersistMode::OpLog,
        net::PersistMode::SysPc, net::PersistMode::SCheckPc,
        net::PersistMode::ACheckPc};

    for (std::size_t m = 0; m < 5; ++m) {
        Rng rng(seed * 5 + m);

        net::ServiceConfig cfg;
        cfg.mode = modes[m];
        cfg.runFor = (300 + rng.below(300)) * tickMs;
        cfg.drainGrace = 5000 * tickMs;
        cfg.cuts = 1;
        cfg.stormFollowUps =
            1 + static_cast<std::uint32_t>(rng.below(2));
        cfg.stormSpacing = (10 + rng.below(40)) * tickMs;
        cfg.offDwell = 50 * tickMs;
        cfg.fleet.clients = 150;
        cfg.fleet.arrivalsPerSec = 1000.0;
        cfg.seed = seed * 5 + m;

        const net::ServiceResult r = net::runService(cfg);

        for (const std::string &note : r.violations)
            ADD_FAILURE() << r.modeName << ": " << note;
        EXPECT_EQ(r.lostAckedPuts, 0u) << r.modeName;
        EXPECT_EQ(r.duplicateApplied, 0u) << r.modeName;
        EXPECT_GT(r.completed, 0u) << r.modeName;

        // Every follow-up fired, each producing its own outage.
        EXPECT_EQ(r.stormFollowUpCuts,
                  std::uint64_t(cfg.cuts) * cfg.stormFollowUps)
            << r.modeName;
        EXPECT_EQ(r.outages.size(), cfg.cuts + r.stormFollowUpCuts)
            << r.modeName;

        EXPECT_LE(r.maxQueueDepth, cfg.kv.queueCapacity);
        EXPECT_LE(r.maxRxOccupancy, cfg.nic.ringEntries);
        EXPECT_LE(r.maxTxOccupancy, cfg.nic.ringEntries);

        // Convergence. The 16 ms hold-up covers the Stop even under
        // the storm, so SnG resumes warm from every outage — in
        // milliseconds, fast enough that the preserved rings serve
        // traffic again after each one. The baselines' recoveries
        // take seconds (the remaining arrivals die out first), so
        // their convergence signal is one completed cold recovery
        // per outage, with the durability audit run at each
        // service-up.
        ASSERT_FALSE(r.outages.empty()) << r.modeName;
        if (cfg.mode == net::PersistMode::SnG
            || cfg.mode == net::PersistMode::OpLog) {
            EXPECT_EQ(r.coldBoots, 0u);
            for (const net::ServiceOutage &o : r.outages)
                EXPECT_NE(o.firstSuccessAfter, maxTick)
                    << r.modeName;
        } else {
            EXPECT_EQ(r.coldBoots, r.outages.size()) << r.modeName;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceStormFuzz,
                         ::testing::Values(11, 404, 80211));

} // namespace
