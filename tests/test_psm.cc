/**
 * @file
 * Unit tests for the Persistent Support Module.
 */

#include <gtest/gtest.h>

#include "psm/psm.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::psm;
using mem::MemOp;
using mem::MemRequest;

PsmParams
lightParams()
{
    PsmParams p;  // LightPC defaults
    p.wearLeveling = false;  // keep addresses predictable
    return p;
}

PsmParams
baselineParams()
{
    PsmParams p = lightParams();
    p.earlyReturnWrites = false;
    p.eccReconstruction = false;
    return p;
}

MemRequest
write(mem::Addr addr)
{
    MemRequest req;
    req.op = MemOp::Write;
    req.addr = addr;
    return req;
}

MemRequest
read(mem::Addr addr)
{
    MemRequest req;
    req.op = MemOp::Read;
    req.addr = addr;
    return req;
}

TEST(Psm, GeometryDefaults)
{
    Psm psm(lightParams());
    // 6 DIMMs x 4 dual-channel groups.
    EXPECT_EQ(psm.serviceUnits(), 24u);
    EXPECT_GT(psm.capacityBytes(), std::uint64_t(64) << 30);
}

TEST(Psm, EarlyReturnWriteCompletesFast)
{
    Psm psm(lightParams());
    const auto result = psm.access(write(0), 0);
    EXPECT_LE(result.completeAt,
              psm.params().busLatency + psm.params().rowBufferLatency);
}

TEST(Psm, RowBufferAggregatesSamePageWrites)
{
    Psm psm(lightParams());
    psm.access(write(0), 0);
    const auto second = psm.access(write(64), 1000);
    EXPECT_TRUE(second.rowBufferHit);
    EXPECT_EQ(psm.stats().rowBufferWriteHits, 1u);
}

TEST(Psm, RowBufferForwardsReadsOfBufferedWrites)
{
    Psm psm(lightParams());
    psm.access(write(128), 0);
    const auto rd = psm.access(read(128), 100);
    EXPECT_TRUE(rd.rowBufferHit);
    EXPECT_EQ(psm.stats().rowBufferReadHits, 1u);
}

TEST(Psm, ReadAfterWriteReconstructsInsteadOfBlocking)
{
    PsmParams params = lightParams();
    Psm psm(params);
    const std::uint64_t page = params.rowBufferBytes;
    // Two writes to *different* pages of the same unit: the second
    // closes the first page, pushing a media write in flight.
    psm.access(write(0), 0);
    const std::uint64_t units = psm.serviceUnits();
    psm.access(write(page * units), 100);

    // A read to a third page of the same unit while the media cools.
    const auto rd = psm.access(read(2 * page * units), 200);
    EXPECT_TRUE(rd.reconstructed);
    EXPECT_EQ(psm.stats().reconstructedReads, 1u);
    // Served at roughly read latency + XOR, not after the write.
    EXPECT_LE(rd.completeAt,
              200 + params.busLatency
                  + params.dimm.device.readLatency
                  + params.xorLatency);
}

TEST(Psm, BaselineReadAfterWriteBlocks)
{
    PsmParams params = baselineParams();
    Psm psm(params);
    const std::uint64_t page = params.rowBufferBytes;
    const std::uint64_t units = psm.serviceUnits();
    psm.access(write(0), 0);
    psm.access(write(page * units), 100);

    const auto rd = psm.access(read(2 * page * units), 200);
    EXPECT_FALSE(rd.reconstructed);
    EXPECT_EQ(psm.stats().blockedReads, 1u);
    // Head-of-line blocking: waits out the cooling window.
    EXPECT_GT(rd.completeAt,
              200 + params.dimm.device.writeLatency);
}

TEST(Psm, BaselineWritesWaitForMedia)
{
    PsmParams params = baselineParams();
    Psm psm(params);
    const std::uint64_t page = params.rowBufferBytes;
    const std::uint64_t units = psm.serviceUnits();
    psm.access(write(0), 0);
    // Page change forces a drain; without early return the issuer
    // waits for it.
    const auto second = psm.access(write(page * units), 50);
    EXPECT_GE(second.completeAt,
              50 + params.dimm.device.writeLatency);
}

TEST(Psm, FlushDrainsRowBuffersAndFences)
{
    Psm psm(lightParams());
    psm.access(write(0), 0);
    psm.access(write(64), 10);
    const Tick quiescent = psm.flush(100);
    // Two dirty lines cool off back to back on the same device.
    EXPECT_GE(quiescent,
              100 + 2 * psm.params().dimm.device.writeLatency);
    EXPECT_EQ(psm.stats().flushes, 1u);
    // After the fence a read is served from media, not the buffer.
    const auto rd = psm.access(read(0), quiescent);
    EXPECT_FALSE(rd.rowBufferHit);
}

TEST(Psm, SequentialWritesSpreadAcrossUnits)
{
    PsmParams params = lightParams();
    Psm psm(params);
    // Touch many consecutive pages; every unit should see traffic.
    const std::uint64_t page = params.rowBufferBytes;
    Tick t = 0;
    for (std::uint64_t i = 0; i < psm.serviceUnits() * 2; ++i)
        t = psm.access(write(i * page), t).completeAt;
    std::uint64_t busy_units = 0;
    for (std::uint32_t d = 0; d < params.dimms; ++d)
        for (std::uint32_t g = 0; g < psm.dimm(d).groupCount(); ++g)
            busy_units += psm.dimm(d).group(g).writeCount() ? 1 : 0;
    // The drains land on many distinct units (the last page per unit
    // may still sit in its row buffer).
    EXPECT_GE(busy_units, psm.serviceUnits() / 2);
}

TEST(Psm, WearLevelingMovesGap)
{
    PsmParams params = lightParams();
    params.wearLeveling = true;
    params.wearThreshold = 10;
    Psm psm(params);
    Tick t = 0;
    for (int i = 0; i < 100; ++i)
        t = psm.access(write(i * 64), t).completeAt;
    EXPECT_EQ(psm.stats().wearMoves, 10u);
}

TEST(Psm, WearStateSurvivesSaveRestore)
{
    PsmParams params = lightParams();
    params.wearLeveling = true;
    params.wearThreshold = 5;
    Psm a(params);
    Tick t = 0;
    for (int i = 0; i < 57; ++i)
        t = a.access(write(i * 4096), t).completeAt;
    const StartGapState state = a.saveWearState();

    Psm b(params);
    b.restoreWearState(state);
    // Identical routing afterwards: same units get the same traffic.
    const auto ra = a.access(read(123 * 64), 1'000'000'000);
    const auto rb = b.access(read(123 * 64), 1'000'000'000);
    EXPECT_EQ(ra.reconstructed, rb.reconstructed);
}

TEST(Psm, ResetPortClearsEverything)
{
    Psm psm(lightParams());
    psm.access(write(0), 0);
    psm.raiseMce();
    psm.resetPort();
    EXPECT_EQ(psm.stats().writes, 0u);
    EXPECT_EQ(psm.stats().mceCount, 0u);
    const auto rd = psm.access(read(0), 0);
    EXPECT_FALSE(rd.rowBufferHit);
}

TEST(Psm, DramLikeLayoutHasOneUnitPerDimm)
{
    PsmParams params = lightParams();
    params.dimm.layout = DimmLayout::DramLike;
    Psm psm(params);
    EXPECT_EQ(psm.serviceUnits(), 6u);
}

TEST(Psm, DramLikeWritePaysReadModifyWrite)
{
    PsmParams dual = lightParams();
    PsmParams rank = lightParams();
    rank.dimm.layout = DimmLayout::DramLike;
    Psm a(dual), b(rank);

    // Two different pages on the same unit -> drain happens.
    auto drain_time = [](Psm &psm) {
        const std::uint64_t page = psm.params().rowBufferBytes;
        const std::uint64_t units = psm.serviceUnits();
        psm.access(write(0), 0);
        psm.access(write(page * units), 10);
        return psm.flush(20);
    };
    // The rank-wide layout pays an extra read per line drain.
    EXPECT_GT(drain_time(b), drain_time(a));
}

TEST(Psm, LatencyHistogramsPopulate)
{
    Psm psm(lightParams());
    Tick t = 0;
    for (int i = 0; i < 10; ++i) {
        t = psm.access(write(i * 64), t).completeAt;
        t = psm.access(read(i * 64), t).completeAt;
    }
    EXPECT_EQ(psm.readLatencyHist().count(), 10u);
    EXPECT_EQ(psm.writeLatencyHist().count(), 10u);
    EXPECT_GT(psm.readLatencyHist().mean(), 0.0);
}

} // namespace
