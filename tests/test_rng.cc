/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

namespace
{

using lightpc::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenIsInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.between(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(17);
    std::array<int, 8> counts{};
    for (int i = 0; i < 80000; ++i)
        ++counts[rng.below(8)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600);
}

} // namespace
