/**
 * @file
 * Tests for the power model and the PSU hold-up model.
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"
#include "power/psu.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::power;

TEST(PowerModel, StaticPowerScalesWithComponents)
{
    PowerModel model;
    ActivitySample bare;
    bare.duration = tickSec;
    const double floor = model.staticWattsOf(bare);

    ActivitySample with_dram = bare;
    with_dram.dramDimms = 6;
    EXPECT_NEAR(model.staticWattsOf(with_dram) - floor,
                6 * (model.constants().dram.backgroundWatts
                     + model.constants().dram.refreshWatts),
                1e-9);

    ActivitySample with_pram = bare;
    with_pram.pramDimms = 6;
    // The PRAM background burden is far below DRAM's (no refresh).
    EXPECT_LT(model.staticWattsOf(with_pram) - floor,
              (model.staticWattsOf(with_dram) - floor) / 5.0);
}

TEST(PowerModel, EnergyIntegratesStaticAndDynamic)
{
    PowerModel model;
    ActivitySample sample;
    sample.duration = tickSec;
    sample.pramDimms = 1;
    sample.pramReads = 1'000'000;
    const double static_only_joules =
        model.staticWattsOf(sample) * 1.0;
    const double expected_dynamic =
        model.constants().pram.readNanojoules * 1e-9 * 1e6;
    EXPECT_NEAR(model.energyOf(sample),
                static_only_joules + expected_dynamic, 1e-6);
}

TEST(PowerModel, ActiveCoresCostMoreThanIdle)
{
    PowerModel model;
    ActivitySample busy, idle;
    busy.duration = idle.duration = tickSec;
    busy.coresActive = 8;
    busy.coreUtilization = 1.0;
    idle.coresIdle = 8;
    EXPECT_GT(model.powerOf(busy), model.powerOf(idle));
}

TEST(PowerModel, UtilizationInterpolatesCorePower)
{
    PowerModel model;
    ActivitySample half;
    half.duration = tickSec;
    half.coresActive = 1;
    half.coreUtilization = 0.5;
    const auto &core = model.constants().core;
    ActivitySample none = half;
    none.coresActive = 0;
    EXPECT_NEAR(model.powerOf(half) - model.powerOf(none),
                core.idleWatts
                    + 0.5 * (core.activeWatts - core.idleWatts),
                1e-9);
}

TEST(PowerModel, PlatformTotalsMatchPaperCalibration)
{
    // LegacyPC ~18.9 W, LightPC ~5.3 W with 8 busy cores (Fig. 18).
    PowerModel model;
    ActivitySample legacy;
    legacy.duration = tickSec;
    legacy.coresActive = 8;
    legacy.coreUtilization = 0.95;
    legacy.dramDimms = 6;
    legacy.dramAccesses = 60'000'000;
    EXPECT_NEAR(model.powerOf(legacy), 18.9, 2.0);

    ActivitySample light;
    light.duration = tickSec;
    light.coresActive = 8;
    light.coreUtilization = 0.95;
    light.pramDimms = 6;
    light.pramReads = 50'000'000;
    light.pramWrites = 5'000'000;
    EXPECT_NEAR(model.powerOf(light), 5.3, 1.0);
}

TEST(EnergyMeter, Accumulates)
{
    EnergyMeter meter;
    meter.addStatic(2.0, tickSec);
    meter.addDynamic(10.0, 1'000'000);  // 10 nJ x 1M = 10 mJ
    EXPECT_NEAR(meter.joules(), 2.01, 1e-9);
    EXPECT_NEAR(meter.averageWatts(2 * tickSec), 1.005, 1e-9);
    meter.reset();
    EXPECT_DOUBLE_EQ(meter.joules(), 0.0);
}

TEST(Psu, MeasuredHoldupsMatchPaper)
{
    // Fig. 8a: ATX 22 ms and server 55 ms at full utilization.
    const PsuModel atx = PsuModel::atx();
    const PsuModel server = PsuModel::dellServer();
    EXPECT_NEAR(ticksToMs(atx.holdupTime(18.9)), 22.0, 0.5);
    EXPECT_NEAR(ticksToMs(server.holdupTime(18.9)), 55.0, 1.0);
    EXPECT_EQ(atx.spec().specHoldup, 16 * tickMs);
}

TEST(Psu, IdleLoadExtendsHoldup)
{
    const PsuModel atx = PsuModel::atx();
    EXPECT_GT(atx.holdupTime(12.0), atx.holdupTime(18.9));
}

TEST(Psu, ResidualEnergyDecays)
{
    const PsuModel atx = PsuModel::atx();
    const double full = atx.spec().storedJoules;
    EXPECT_DOUBLE_EQ(atx.residualJoules(18.9, 0), full);
    EXPECT_NEAR(atx.residualJoules(18.9, 11 * tickMs), full / 2.0,
                1e-9);
    EXPECT_DOUBLE_EQ(atx.residualJoules(18.9, 100 * tickMs), 0.0);
}

TEST(Psu, ZeroLoadNeverRunsOut)
{
    const PsuModel atx = PsuModel::atx();
    EXPECT_EQ(atx.holdupTime(0.0), maxTick);
}

} // namespace
