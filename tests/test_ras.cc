/**
 * @file
 * Media-error RAS pipeline: the PramDevice fault model, the retire
 * table, RAS-checked reads through the real codecs, the patrol
 * scrubber (including Start-Gap rotation mid-sweep), MCE escalation
 * on both policy arms, the platform::System RAS plumbing, and the
 * Contain-then-SnG survival property.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "mem/pram_device.hh"
#include "pecos/mce.hh"
#include "pecos/sng.hh"
#include "platform/system.hh"
#include "psm/psm.hh"
#include "psm/retire.hh"
#include "psm/scrub.hh"

namespace
{

using namespace lightpc;

// --- small-geometry helpers ----------------------------------------

/** 2 DIMMs of 1 MB devices: fast to sweep, big enough to route. */
psm::PsmParams
smallPsmParams()
{
    psm::PsmParams pp;
    pp.dimms = 2;
    pp.dimm.device.capacityBytes = 1 << 20;
    pp.dimm.device.wearRegionBytes = 64 << 10;
    return pp;
}

/** SnG-capable geometry (>= 16 MB reserved region). */
psm::PsmParams
sngPsmParams()
{
    psm::PsmParams pp;
    pp.dimms = 2;
    pp.dimm.device.capacityBytes = 16 << 20;
    pp.dimm.device.wearRegionBytes = 64 << 10;
    return pp;
}

kernel::KernelParams
smallKernelParams()
{
    kernel::KernelParams kp;
    kp.cores = 4;
    kp.userProcesses = 8;
    kp.kernelThreads = 4;
    return kp;
}

// --- RetireTable ---------------------------------------------------

TEST(RetireTable, IdentityUntilRetired)
{
    psm::RetireTable table(100, 4);
    EXPECT_EQ(table.remap(7), 7u);
    EXPECT_EQ(table.remap(99), 99u);
    EXPECT_FALSE(table.isRetired(7));
    EXPECT_EQ(table.retiredCount(), 0u);
    EXPECT_EQ(table.sparesLeft(), 4u);
}

TEST(RetireTable, RetireMapsToSparePool)
{
    psm::RetireTable table(100, 4);
    const std::uint64_t spare = table.retire(7);
    EXPECT_EQ(spare, 100u);
    EXPECT_EQ(table.remap(7), 100u);
    EXPECT_TRUE(table.isRetired(7));
    EXPECT_EQ(table.retiredCount(), 1u);
    EXPECT_EQ(table.sparesLeft(), 3u);

    // A second slot gets the next spare.
    EXPECT_EQ(table.retire(63), 101u);
    EXPECT_EQ(table.remap(63), 101u);
}

TEST(RetireTable, ReRetireCollapsesChain)
{
    psm::RetireTable table(100, 4);
    table.retire(7);
    // The spare itself went bad: re-retiring slot 7 must swap in a
    // fresh spare, never build a remap chain.
    const std::uint64_t second = table.retire(7);
    EXPECT_EQ(second, 101u);
    EXPECT_EQ(table.remap(7), 101u);
    EXPECT_EQ(table.mappedCount(), 1u);
}

TEST(RetireTable, SparePoolExhausts)
{
    psm::RetireTable table(100, 2);
    EXPECT_TRUE(table.canRetire());
    table.retire(1);
    table.retire(2);
    EXPECT_FALSE(table.canRetire());
    EXPECT_EQ(table.retire(3), ~std::uint64_t(0));
    EXPECT_EQ(table.remap(3), 3u);  // still in service, unmapped

    table.reset();
    EXPECT_TRUE(table.canRetire());
    EXPECT_EQ(table.remap(1), 1u);
}

// --- PramDevice media-fault model ----------------------------------

TEST(MediaFaults, TransientFlipsAreSeededAndBounded)
{
    mem::PramParams params;
    params.capacityBytes = 1 << 20;
    params.wearRegionBytes = 64 << 10;
    params.faults.enabled = true;
    params.faults.transientBer = 0.05;
    params.faults.seed = 99;

    mem::PramDevice dev(params);
    std::uint64_t flips = 0;
    for (std::uint64_t g = 0; g < 4096; ++g) {
        const auto f = dev.sampleReadFaults(g * 32);
        EXPECT_LE(f.flipped, 32u);
        EXPECT_EQ(f.stuck, 0u);  // no writes yet, no wear
        flips += f.flipped;
    }
    // 4096 granules x 32 symbols x 5%: flips must show up in bulk.
    EXPECT_GT(flips, 1000u);

    // Re-seeding replays the identical fault stream.
    dev.seedFaults(99);
    std::uint64_t replay = 0;
    for (std::uint64_t g = 0; g < 4096; ++g)
        replay += dev.sampleReadFaults(g * 32).flipped;
    EXPECT_EQ(replay, flips);
}

TEST(MediaFaults, StuckAtRequiresWearOnset)
{
    mem::PramParams params;
    params.capacityBytes = 1 << 20;
    params.wearRegionBytes = 64 << 10;
    params.faults.enabled = true;
    params.faults.wearStuckRate = 1.0;
    params.faults.wearOnsetFraction = 0.5;
    params.faults.seed = 7;

    mem::PramDevice dev(params);
    dev.write(0, 0, false);
    EXPECT_EQ(dev.stuckGranuleCount(), 0u) << "no wear, no sticking";

    dev.preWear(params.enduranceCycles);  // fully worn
    dev.write(dev.busyUntil(), 0, false);
    // Rate 1.0 at full wear: the line's data granules and its
    // companion parity granule all stick.
    EXPECT_GT(dev.stuckSymbols(0), 0u);
    EXPECT_GT(dev.stuckSymbols(32), 0u);
    EXPECT_GT(dev.stuckSymbols(mem::Addr(0) | mem::pramParityTag), 0u);

    // Stuck symbols persist across reads and cap at the limit.
    for (int i = 0; i < 3; ++i) {
        const auto f = dev.sampleReadFaults(0);
        EXPECT_EQ(f.stuck, dev.stuckSymbols(0));
        EXPECT_LE(f.stuck, params.faults.maxStuckPerGranule);
    }

    // Retirement forgets the granule's stuck state.
    dev.retireGranule(0);
    EXPECT_EQ(dev.stuckSymbols(0), 0u);
}

TEST(MediaFaults, WearCountersSaturate)
{
    mem::PramParams params;
    params.capacityBytes = 1 << 20;
    params.wearRegionBytes = 64 << 10;

    mem::PramDevice dev(params);
    dev.preWear(3 * params.enduranceCycles);  // way past end of life
    EXPECT_DOUBLE_EQ(dev.wearFraction(0), 1.0);

    // Further writes must not wrap the saturated counter.
    Tick t = dev.busyUntil();
    for (int i = 0; i < 64; ++i)
        t = dev.write(t, 0, false).completeAt;
    EXPECT_DOUBLE_EQ(dev.wearFraction(0), 1.0);

    stats::Histogram hist;
    dev.addWearSamples(hist);
    const std::uint64_t regions =
        params.capacityBytes / params.wearRegionBytes;
    EXPECT_EQ(hist.count(), regions);
    EXPECT_EQ(hist.max(), params.enduranceCycles);
}

// --- PSM RAS read path ---------------------------------------------

TEST(PsmRas, TransientFaultsAreCorrectedNotSilent)
{
    psm::PsmParams pp = smallPsmParams();
    pp.dimm.device.faults.enabled = true;
    pp.dimm.device.faults.transientBer = 1e-3;
    psm::Psm psm(pp);

    Rng rng(11);
    Tick t = 0;
    for (int i = 0; i < 4000; ++i) {
        mem::MemRequest req;
        req.addr = rng.below(psm.managedLines()) * mem::cacheLineBytes;
        req.op = rng.chance(0.25) ? mem::MemOp::Write
                                  : mem::MemOp::Read;
        t = psm.access(req, t).completeAt + 5 * tickNs;
    }
    const psm::PsmStats &s = psm.stats();
    EXPECT_GT(s.rasCheckedReads, 0u);
    EXPECT_GT(s.correctedReads + s.parityRewrites, 0u)
        << "1e-3 BER over 4000 ops must corrupt something";
    EXPECT_EQ(s.sdcEvents, 0u);
}

TEST(PsmRas, SymbolFallbackRecoversDoubleErasures)
{
    psm::PsmParams pp = smallPsmParams();
    pp.dimm.device.faults.enabled = true;
    pp.dimm.device.faults.transientBer = 0.2;  // double faults common
    pp.symbolEccFallback = true;
    psm::Psm psm(pp);

    Rng rng(12);
    Tick t = 0;
    for (int i = 0; i < 1500; ++i) {
        mem::MemRequest req;
        req.addr = rng.below(psm.managedLines()) * mem::cacheLineBytes;
        req.op = mem::MemOp::Read;
        t = psm.access(req, t).completeAt + 5 * tickNs;
    }
    const psm::PsmStats &s = psm.stats();
    EXPECT_GT(s.symbolCorrections, 0u);
    EXPECT_EQ(s.uncorrectableReads, 0u)
        << "RS(2,2) erasure decode covers every double-fault pattern";
    EXPECT_EQ(s.sdcEvents, 0u);
}

TEST(PsmRas, DoubleErasureWithoutFallbackRaisesContainment)
{
    psm::PsmParams pp = smallPsmParams();
    pp.dimm.device.faults.enabled = true;
    pp.dimm.device.faults.transientBer = 0.2;
    pp.symbolEccFallback = false;
    psm::Psm psm(pp);

    Rng rng(13);
    Tick t = 0;
    bool saw_containment = false;
    for (int i = 0; i < 1500 && !saw_containment; ++i) {
        mem::MemRequest req;
        req.addr = rng.below(psm.managedLines()) * mem::cacheLineBytes;
        req.op = mem::MemOp::Read;
        const mem::AccessResult res = psm.access(req, t);
        saw_containment = res.containment;
        t = res.completeAt + 5 * tickNs;
    }
    EXPECT_TRUE(saw_containment);
    EXPECT_GT(psm.stats().uncorrectableReads, 0u);
    EXPECT_GT(psm.stats().mceCount, 0u);
    EXPECT_EQ(psm.stats().sdcEvents, 0u);
}

TEST(PsmRas, StuckLineIsRetiredOnReadAndStaysRetired)
{
    psm::PsmParams pp = smallPsmParams();
    pp.dimm.device.faults.enabled = true;
    pp.dimm.device.faults.wearStuckRate = 1.0;
    pp.dimm.device.faults.wearOnsetFraction = 0.0;
    pp.symbolEccFallback = true;  // double-stuck lines recover + retire
    pp.spareLines = 256;
    psm::Psm psm(pp);

    for (std::uint32_t d = 0; d < pp.dimms; ++d)
        for (std::uint32_t g = 0; g < psm.dimm(d).groupCount(); ++g)
            psm.dimm(d).group(g).preWear(
                pp.dimm.device.enduranceCycles);

    // Write a line (sticking its granules at full wear), then read it.
    mem::MemRequest wr;
    wr.op = mem::MemOp::Write;
    Tick t = psm.access(wr, 0).completeAt;
    t = psm.flush(t);  // push it out of the row buffer
    mem::MemRequest rd;
    t = psm.access(rd, t).completeAt + 5 * tickNs;

    EXPECT_EQ(psm.stats().retiredLines, 1u);
    EXPECT_EQ(psm.retireTable().retiredCount(), 1u);
    EXPECT_EQ(psm.stats().sdcEvents, 0u);
}

// --- patrol scrub + Start-Gap rotation -----------------------------

TEST(PatrolScrub, SweepServicesEveryLineOnceDespiteGapRotation)
{
    psm::PsmParams pp = smallPsmParams();
    pp.wearThreshold = 16;  // rotate the gap briskly
    psm::Psm psm(pp);

    psm::ScrubParams sp;
    sp.linesPerStep = 1024;
    psm::PatrolScrubber scrubber(psm, sp);

    const std::uint64_t lines = psm.managedLines();
    Tick t = 0;
    std::uint64_t serviced = 0;
    bool rotated_mid_sweep = false;
    Rng rng(21);
    while (scrubber.sweepsCompleted() == 0) {
        serviced += scrubber.step(t);
        t += 100 * tickMs;  // generous idle window per step

        // Rotate the gap mid-sweep with real write traffic, then
        // drain the row buffers so the scrubber is not deferred.
        const std::uint64_t moves_before = psm.stats().wearMoves;
        for (int w = 0; w < 64; ++w) {
            mem::MemRequest req;
            req.addr = rng.below(lines) * mem::cacheLineBytes;
            req.op = mem::MemOp::Write;
            t = psm.access(req, t).completeAt + 5 * tickNs;
        }
        t = psm.flush(t) + 100 * tickMs;
        if (psm.stats().wearMoves > moves_before
            && scrubber.cursor() != 0)
            rotated_mid_sweep = true;
    }

    // The cursor walks *logical* lines, so Start-Gap rotation cannot
    // make it skip or double-scrub: one sweep = every line once.
    EXPECT_TRUE(rotated_mid_sweep);
    EXPECT_EQ(serviced, lines);
    EXPECT_EQ(psm.stats().scrubbedLines, lines);
    EXPECT_EQ(scrubber.stats().skipped, 0u);
}

TEST(PatrolScrub, PlantedStuckLineIsRetiredExactlyOnce)
{
    psm::PsmParams pp = smallPsmParams();
    pp.dimm.device.faults.enabled = true;
    pp.dimm.device.faults.wearStuckRate = 1.0;
    pp.dimm.device.faults.wearOnsetFraction = 0.0;
    pp.spareLines = 64;
    psm::Psm psm(pp);

    // Plant a single-half stuck line directly at the device: stick
    // all three granules with a direct write, then clear B and the
    // parity companion so exactly one half is bad (the XCC-correct +
    // retire path).
    mem::PramDevice &dev = psm.dimm(0).group(0);
    dev.preWear(pp.dimm.device.enduranceCycles);
    dev.write(0, 0, false);
    dev.retireGranule(32);
    dev.retireGranule(mem::Addr(0) | mem::pramParityTag);
    ASSERT_GT(dev.stuckSymbols(0), 0u);

    psm::ScrubParams sp;
    sp.linesPerStep = 4096;
    psm::PatrolScrubber scrubber(psm, sp);

    Tick t = 10 * tickMs;
    while (scrubber.sweepsCompleted() < 2) {
        scrubber.step(t);
        t += 500 * tickMs;
    }
    // Sweep one retires the slot; sweep two must find the remapped
    // spare clean — the same physical damage is never retired twice.
    EXPECT_EQ(scrubber.stats().retirements, 1u);
    EXPECT_EQ(psm.stats().retiredLines, 1u);
    EXPECT_EQ(psm.retireTable().retiredCount(), 1u);
    EXPECT_EQ(psm.stats().sdcEvents, 0u);
}

TEST(PatrolScrub, DefersWhileDeviceBusy)
{
    psm::Psm psm(smallPsmParams());
    psm::ScrubParams sp;
    sp.linesPerStep = 4;
    sp.maxRetries = 2;
    psm::PatrolScrubber scrubber(psm, sp);

    // Saturate unit 0's device with a write, then scrub at t=0: the
    // first lines of the sweep land on busy media and defer.
    mem::MemRequest req;
    req.op = mem::MemOp::Write;
    psm.access(req, 0);
    const std::uint64_t serviced = scrubber.step(0);
    EXPECT_LT(serviced, sp.linesPerStep);
    EXPECT_GT(psm.stats().scrubDeferrals, 0u);
}

// --- MCE escalation ------------------------------------------------

/** Rig with a guaranteed-uncorrectable line at address 0. */
struct McePsmRig
{
    psm::PsmParams pp;
    std::unique_ptr<psm::Psm> psm;
    Tick t = 0;

    explicit McePsmRig(psm::McePolicy policy)
    {
        pp = smallPsmParams();
        pp.mcePolicy = policy;
        pp.dimm.device.faults.enabled = true;
        pp.dimm.device.faults.wearStuckRate = 1.0;
        pp.dimm.device.faults.wearOnsetFraction = 0.0;
        pp.spareLines = 64;
        psm = std::make_unique<psm::Psm>(pp);
        for (std::uint32_t d = 0; d < pp.dimms; ++d)
            for (std::uint32_t g = 0; g < psm->dimm(d).groupCount();
                 ++g)
                psm->dimm(d).group(g).preWear(
                    pp.dimm.device.enduranceCycles);
    }

    /** Write+read address 0 until containment pops. */
    bool
    provoke()
    {
        for (int i = 0; i < 4; ++i) {
            mem::MemRequest wr;
            wr.op = mem::MemOp::Write;
            t = psm->access(wr, t).completeAt;
            t = psm->flush(t);
            mem::MemRequest rd;
            const mem::AccessResult res = psm->access(rd, t);
            t = res.completeAt + 5 * tickNs;
            if (res.containment)
                return true;
        }
        return false;
    }
};

TEST(MceEscalation, ContainKillsOwnerAndRetiresLine)
{
    McePsmRig rig(psm::McePolicy::Contain);
    kernel::Kernel kern(smallKernelParams());
    pecos::MceHandler mce(kern, *rig.psm);

    // First user process owns the faulting page.
    std::uint32_t victim = 0;
    for (const auto &proc : kern.processes()) {
        if (proc->pid() != 1 && !proc->isKernelThread()) {
            victim = proc->pid();
            break;
        }
    }
    ASSERT_NE(victim, 0u);
    mce.registerOwner(0, 4096, victim);

    ASSERT_TRUE(rig.provoke());
    const pecos::MceOutcome out = mce.handle(0, rig.t);

    EXPECT_EQ(out.action, pecos::MceAction::Contained);
    EXPECT_EQ(out.killedPid, victim);
    EXPECT_TRUE(out.lineRetired);
    EXPECT_EQ(kern.findProcess(victim), nullptr);
    EXPECT_EQ(mce.stats().contained, 1u);
    EXPECT_EQ(mce.stats().tasksKilled, 1u);
    EXPECT_EQ(mce.stats().linesRetired, 1u);
    EXPECT_EQ(rig.psm->retireTable().retiredCount(), 1u);
    // Contain must NOT reset OC-PMEM.
    EXPECT_EQ(rig.psm->stats().resets, 0u);
}

TEST(MceEscalation, ContainWithoutOwnerEscalatesToColdBoot)
{
    McePsmRig rig(psm::McePolicy::Contain);
    kernel::Kernel kern(smallKernelParams());
    pecos::MceHandler mce(kern, *rig.psm);

    ASSERT_TRUE(rig.provoke());
    const pecos::MceOutcome out = mce.handle(0, rig.t);

    EXPECT_EQ(out.action, pecos::MceAction::ColdBoot);
    EXPECT_EQ(mce.stats().kernelEscalations, 1u);
    EXPECT_EQ(mce.stats().coldBoots, 1u);
    EXPECT_GT(rig.psm->stats().resets, 0u);
}

TEST(MceEscalation, ResetColdBootPolicyResetsPmem)
{
    McePsmRig rig(psm::McePolicy::ResetColdBoot);
    kernel::Kernel kern(smallKernelParams());
    pecos::MceHandler mce(kern, *rig.psm);
    mce.registerOwner(0, 4096, 2);  // owner is irrelevant on this arm

    ASSERT_TRUE(rig.provoke());
    const pecos::MceOutcome out = mce.handle(0, rig.t);

    EXPECT_EQ(out.action, pecos::MceAction::ColdBoot);
    EXPECT_EQ(out.killedPid, 0u);
    EXPECT_FALSE(out.lineRetired);
    EXPECT_EQ(mce.stats().coldBoots, 1u);
    EXPECT_GT(rig.psm->stats().resets, 0u);
    // Nobody was killed.
    EXPECT_EQ(mce.stats().tasksKilled, 0u);
}

TEST(MceEscalation, ContainedTrialSurvivesSngStopResume)
{
    // The headline Contain property: kill the owner, retire the
    // line, then stop the whole machine and bring it back — the
    // survivors' registers round-trip byte-exact.
    psm::PsmParams pp = sngPsmParams();
    pp.mcePolicy = psm::McePolicy::Contain;
    pp.dimm.device.faults.enabled = true;
    pp.dimm.device.faults.wearStuckRate = 1.0;
    pp.dimm.device.faults.wearOnsetFraction = 0.0;
    pp.spareLines = 256;

    kernel::Kernel kern(smallKernelParams());
    psm::Psm psm(pp);
    mem::BackingStore store;
    pecos::Sng sng(kern, psm, store, {});
    pecos::MceHandler mce(kern, psm);

    for (std::uint32_t d = 0; d < pp.dimms; ++d)
        for (std::uint32_t g = 0; g < psm.dimm(d).groupCount(); ++g)
            psm.dimm(d).group(g).preWear(
                pp.dimm.device.enduranceCycles);

    std::uint32_t victim = 0;
    for (const auto &proc : kern.processes()) {
        if (proc->pid() != 1 && !proc->isKernelThread()) {
            victim = proc->pid();
            break;
        }
    }
    ASSERT_NE(victim, 0u);
    mce.registerOwner(0, 4096, victim);

    // Provoke and contain an uncorrectable at address 0.
    Tick t = 0;
    bool contained = false;
    for (int i = 0; i < 4 && !contained; ++i) {
        mem::MemRequest wr;
        wr.op = mem::MemOp::Write;
        t = psm.access(wr, t).completeAt;
        t = psm.flush(t);
        mem::MemRequest rd;
        const mem::AccessResult res = psm.access(rd, t);
        t = res.completeAt + 5 * tickNs;
        if (res.containment) {
            const pecos::MceOutcome out = mce.handle(0, t);
            ASSERT_EQ(out.action, pecos::MceAction::Contained);
            ASSERT_TRUE(out.lineRetired);
            contained = true;
        }
    }
    ASSERT_TRUE(contained);

    // Stop-and-Go with no power cut: must resume, not cold boot.
    const kernel::SystemSnapshot before = kern.snapshot();
    const pecos::StopReport stop = sng.stop(t);
    Rng rng(31);
    kern.scramble(rng);
    const pecos::GoReport go = sng.resume(stop.offlineDone + tickMs);

    EXPECT_FALSE(go.coldBoot);
    const kernel::SystemSnapshot after = kern.snapshot();
    ASSERT_EQ(after.entries.size(), before.entries.size());
    for (std::size_t p = 0; p < after.entries.size(); ++p) {
        EXPECT_EQ(after.entries[p].pid, before.entries[p].pid);
        EXPECT_EQ(after.entries[p].regs, before.entries[p].regs);
    }
    EXPECT_EQ(after.deviceCookies, before.deviceCookies);
    // The retirement survived the stop (it lives in PSM state, not
    // in anything the scramble touched).
    EXPECT_EQ(psm.retireTable().retiredCount(), 1u);
}

// --- platform::System plumbing -------------------------------------

TEST(SystemRas, ConfigOverridesReachPsmAndHandler)
{
    platform::SystemConfig config;
    config.cores = 2;
    config.kernel = smallKernelParams();
    config.mcePolicy = psm::McePolicy::Contain;
    mem::MediaFaultParams faults;
    faults.enabled = true;
    faults.transientBer = 1e-4;
    config.mediaFaults = faults;
    config.spareLines = 128;

    platform::System sys(config);
    EXPECT_EQ(sys.psm().params().mcePolicy, psm::McePolicy::Contain);
    EXPECT_TRUE(sys.psm().params().dimm.device.faults.enabled);
    EXPECT_DOUBLE_EQ(
        sys.psm().params().dimm.device.faults.transientBer, 1e-4);
    EXPECT_EQ(sys.psm().params().spareLines, 128u);
    EXPECT_EQ(sys.psm().retireTable().spareTotal(), 128u);

    // The handler is wired to this system's kernel: an MCE on an
    // unowned address under Contain escalates through it.
    EXPECT_EQ(sys.mceHandler().stats().raised, 0u);
}

TEST(SystemRas, DefaultsLeaveFaultModelOff)
{
    platform::SystemConfig config;
    config.cores = 2;
    config.kernel = smallKernelParams();
    platform::System sys(config);
    EXPECT_FALSE(sys.psm().params().dimm.device.faults.enabled);
    EXPECT_EQ(sys.psm().params().spareLines, 0u);
    EXPECT_EQ(sys.psm().params().mcePolicy,
              psm::McePolicy::ResetColdBoot);
}

} // namespace
