/**
 * @file
 * Power-cut fault injection: PowerRail analytics, the BackingStore
 * durability cursor, SnG prefix durability under a mid-Stop cut, the
 * resume payload-address regression, and the campaign invariant fuzz
 * across every persistence mode.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <vector>

#include "fault/campaign.hh"
#include "fault/fault_injector.hh"
#include "fault/power_rail.hh"
#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "pecos/layout.hh"
#include "pecos/sng.hh"
#include "persist/checkpoint.hh"
#include "power/psu.hh"
#include "psm/psm.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using fault::FaultInjector;
using fault::PowerRail;
using mem::BackingStore;
using power::PsuModel;

// --- PowerRail -----------------------------------------------------

TEST(PowerRail, ConstantLoadMatchesPsuHoldup)
{
    const PsuModel psu = PsuModel::atx();
    for (const double watts : {5.0, 18.9, 40.0}) {
        PowerRail rail(psu, watts);
        const Tick expected = psu.holdupTime(watts);
        const Tick got = rail.holdupFrom(0);
        // Identical formula modulo double rounding.
        EXPECT_NEAR(static_cast<double>(got),
                    static_cast<double>(expected),
                    static_cast<double>(2 * tickNs))
            << "load " << watts << " W";
    }
}

TEST(PowerRail, ZeroLoadNeverFails)
{
    PowerRail rail(PsuModel::atx(), 0.0);
    EXPECT_EQ(rail.failTick(123), maxTick);
    EXPECT_EQ(rail.holdupFrom(123), maxTick);
}

TEST(PowerRail, StepProfileIntegratesPiecewise)
{
    // 1 J budget: 100 W for 5 ms burns 0.5 J, then 50 W drains the
    // remaining 0.5 J in exactly 10 ms.
    power::PsuSpec spec{"unit", 1.0, 100.0, 0};
    PowerRail rail(PsuModel(spec), 100.0);
    rail.addStep(5 * tickMs, 50.0);

    EXPECT_EQ(rail.loadAt(0), 100.0);
    EXPECT_EQ(rail.loadAt(5 * tickMs), 50.0);

    const Tick fail = rail.failTick(0);
    EXPECT_NEAR(static_cast<double>(fail),
                static_cast<double>(15 * tickMs),
                static_cast<double>(tickUs));

    // AC lost mid-way through the first step: 100 W over [2, 5) ms
    // burns 0.3 J, the remaining 0.7 J lasts 14 ms at 50 W.
    const Tick fail2 = rail.failTick(2 * tickMs);
    EXPECT_NEAR(static_cast<double>(fail2),
                static_cast<double>(19 * tickMs),
                static_cast<double>(2 * tickUs));
}

TEST(PowerRail, EnergyIntegralMatchesProfile)
{
    PowerRail rail(PsuModel::atx(), 10.0);
    rail.addStep(1 * tickMs, 4.0);
    // 10 W over 1 ms + 4 W over 2 ms = 0.018 J.
    EXPECT_NEAR(rail.energyUsedBy(0, 3 * tickMs), 0.018, 1e-9);
    // Window inside the second step only.
    EXPECT_NEAR(rail.energyUsedBy(2 * tickMs, 3 * tickMs), 0.004,
                1e-9);
}

// --- BackingStore durability cursor --------------------------------

TEST(DurabilityCursor, UnarmedWritesAreUnfiltered)
{
    BackingStore store;
    const std::uint64_t v = 0xabcdef;
    store.writeTimed(100, 200, 0x1000, &v, sizeof(v));
    EXPECT_EQ(store.readValue<std::uint64_t>(0x1000), v);
    EXPECT_FALSE(store.powerCutArmed());
}

TEST(DurabilityCursor, DurableDroppedAndDisarm)
{
    BackingStore store;
    store.armPowerCut(1000, 42);

    std::uint8_t buf[256];
    std::memset(buf, 0x5a, sizeof(buf));

    // Completes before the cut: durable.
    store.writeTimed(0, 999, 0x0, buf, sizeof(buf));
    // Starts at the cut: dropped entirely.
    store.writeTimed(1000, 1200, 0x1000, buf, sizeof(buf));

    EXPECT_EQ(store.readValue<std::uint8_t>(0x0), 0x5a);
    EXPECT_EQ(store.readValue<std::uint8_t>(0xff), 0x5a);
    EXPECT_EQ(store.readValue<std::uint8_t>(0x1000), 0);
    EXPECT_EQ(store.cutStats().durableWrites, 1u);
    EXPECT_EQ(store.cutStats().droppedWrites, 1u);
    EXPECT_EQ(store.cutStats().durableBytes, sizeof(buf));
    EXPECT_EQ(store.cutStats().droppedBytes, sizeof(buf));

    // Power restored: the same write lands.
    store.disarmPowerCut();
    store.writeTimed(1000, 1200, 0x1000, buf, sizeof(buf));
    EXPECT_EQ(store.readValue<std::uint8_t>(0x1000), 0x5a);
}

TEST(DurabilityCursor, SmallWritesAreAtomic)
{
    BackingStore store;
    store.armPowerCut(1000, 7);

    const std::uint64_t v = 0x1122334455667788ULL;
    // Completion exactly at the cut: the store never landed.
    store.writeTimed(900, 1000, 0x40, &v, sizeof(v));
    EXPECT_EQ(store.readValue<std::uint64_t>(0x40), 0u);
    // One tick earlier: fully durable — an 8-byte store is never
    // torn.
    store.writeTimed(900, 999, 0x80, &v, sizeof(v));
    EXPECT_EQ(store.readValue<std::uint64_t>(0x80), v);
    EXPECT_EQ(store.cutStats().tornWrites, 0u);
}

TEST(DurabilityCursor, StraddlingWriteKeepsLinePrefixAndTearsOne)
{
    // 16 lines over [0, 1600), cut at 800 -> 8 durable lines, one
    // torn line, the rest dropped.
    BackingStore store;
    store.armPowerCut(800, 99);

    std::vector<std::uint8_t> buf(16 * 64);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i % 251 + 1);
    store.writeTimed(0, 1600, 0x2000, buf.data(), buf.size());

    EXPECT_EQ(store.cutStats().tornWrites, 1u);
    const std::uint64_t torn = store.cutStats().lastTornBytes;
    EXPECT_LE(torn, 64u);
    EXPECT_EQ(store.cutStats().lastTornLine, 0x2000u + 8 * 64);

    std::vector<std::uint8_t> got(buf.size());
    store.read(0x2000, got.data(), got.size());

    const std::uint64_t durable = 8 * 64 + torn;
    // Byte-exact durable prefix...
    EXPECT_EQ(std::memcmp(got.data(), buf.data(), durable), 0);
    // ...and nothing after it.
    for (std::uint64_t i = durable; i < got.size(); ++i)
        ASSERT_EQ(got[i], 0u) << "byte " << i << " leaked past cut";
}

TEST(DurabilityCursor, WriteClockGatesInstantWrites)
{
    BackingStore store;
    store.armPowerCut(500, 3);

    const std::array<std::uint8_t, 32> a{{1, 2, 3}};
    store.setWriteClock(499);
    store.write(0x0, a.data(), a.size());
    store.setWriteClock(500);
    store.write(0x100, a.data(), a.size());

    EXPECT_EQ(store.readValue<std::uint8_t>(0x0), 1);
    EXPECT_EQ(store.readValue<std::uint8_t>(0x100), 0);
    // Instant writes never straddle, so they never tear.
    EXPECT_EQ(store.cutStats().tornWrites, 0u);
}

TEST(DurabilityCursor, EpochFloorBlocksResurrectionAcrossCuts)
{
    // The single-epoch bug: bytes dropped by cut #1 must not be
    // resurrected by replaying the same timed interval under cut #2.
    BackingStore store;
    const std::uint64_t v = 0xfeedfacecafef00dULL;

    store.armPowerCut(1000, 11);
    store.writeTimed(1100, 1200, 0x3000, &v, sizeof(v));  // dropped
    EXPECT_EQ(store.readValue<std::uint64_t>(0x3000), 0u);
    store.disarmPowerCut();
    EXPECT_EQ(store.epochFloor(), 1000u);

    // Second epoch: a replay of the pre-floor interval is stale and
    // must be rejected even though it now ends before the new cut.
    store.armPowerCut(5000, 12);
    store.writeTimed(900, 980, 0x3000, &v, sizeof(v));
    EXPECT_EQ(store.readValue<std::uint64_t>(0x3000), 0u);
    EXPECT_EQ(store.cutStats().staleWrites, 1u);
    EXPECT_EQ(store.cutStats().staleBytes, sizeof(v));

    // Post-floor writes land as usual.
    store.writeTimed(1500, 1600, 0x3000, &v, sizeof(v));
    EXPECT_EQ(store.readValue<std::uint64_t>(0x3000), v);
    store.disarmPowerCut();
    EXPECT_EQ(store.cutEpoch(), 2u);
    EXPECT_EQ(store.epochFloor(), 5000u);
}

TEST(DurabilityCursor, CancelledCutDoesNotAdvanceTheFloor)
{
    // An armed cut that never fired (AC back before the deadline)
    // must not push the epoch floor into the future.
    BackingStore store;
    store.armPowerCut(1000, 13);
    store.disarmPowerCut();
    EXPECT_EQ(store.epochFloor(), 1000u);

    store.armPowerCut(1'000'000, 14);
    store.cancelPowerCut();
    EXPECT_EQ(store.epochFloor(), 1000u);

    // A write the continuing execution issues before the cancelled
    // instant is perfectly legitimate.
    const std::uint64_t v = 0x1234;
    store.writeTimed(2000, 2100, 0x4000, &v, sizeof(v));
    EXPECT_EQ(store.readValue<std::uint64_t>(0x4000), v);
}

// --- PowerRail brownout sags ---------------------------------------

TEST(PowerRailSag, ZeroLoadDroopNeverFails)
{
    PowerRail rail(PsuModel::atx(), 0.0);
    rail.addSag(0, 10 * tickSec, 0.0);  // total blackout, no load
    const fault::SagOutcome out = rail.evaluateSags();
    EXPECT_FALSE(out.railsFailed);
    EXPECT_EQ(out.recoveredAt, 10 * tickSec);
    EXPECT_DOUBLE_EQ(out.minJoules, PsuModel::atx().spec().storedJoules);
}

TEST(PowerRailSag, SagExactlyAtTheHoldupFloorSurvives)
{
    // A full blackout lasting exactly the hold-up drains the reserve
    // to the floor but the rails never leave specification: failure
    // requires running dry strictly inside the sag.
    const PsuModel psu = PsuModel::atx();
    const double watts = 18.9;
    const Tick holdup = psu.holdupTime(watts);

    PowerRail rail(psu, watts);
    rail.addSag(0, holdup, 0.0);
    const fault::SagOutcome at_floor = rail.evaluateSags();
    EXPECT_FALSE(at_floor.railsFailed);
    EXPECT_NEAR(at_floor.minJoules, 0.0, 1e-6);
    EXPECT_EQ(at_floor.recoveredAt, holdup);

    // One microsecond longer and the reserve runs dry mid-sag.
    PowerRail over(psu, watts);
    over.addSag(0, holdup + tickUs, 0.0);
    const fault::SagOutcome failed = over.evaluateSags();
    EXPECT_TRUE(failed.railsFailed);
    EXPECT_NEAR(static_cast<double>(failed.failTick),
                static_cast<double>(holdup),
                static_cast<double>(tickUs));
    EXPECT_EQ(failed.minJoules, 0.0);
}

TEST(PowerRailSag, PartialSagScalesTheEffectiveDrain)
{
    // At 60 % supply the PSU bridges only 40 % of the load, so the
    // survivable duration stretches by 1/0.4.
    const PsuModel psu = PsuModel::atx();
    const double watts = 18.9;
    const Tick holdup = psu.holdupTime(watts);
    const Tick stretched = holdup * 5 / 2;

    PowerRail rail(psu, watts);
    rail.addSag(0, stretched - tickMs, 0.6);
    EXPECT_FALSE(rail.evaluateSags().railsFailed);

    PowerRail deeper(psu, watts);
    deeper.addSag(0, stretched + tickMs, 0.6);
    EXPECT_TRUE(deeper.evaluateSags().railsFailed);
}

TEST(PowerRailSag, TwoSagsInOneWindowShareTheReserve)
{
    // Two back-to-back half-hold-up blackouts with a gap too short
    // to recharge: the second runs the shared reserve dry. The same
    // pair spaced far apart survives on the recharge between them.
    const PsuModel psu = PsuModel::atx();  // 25 W recharge
    const double watts = 18.9;
    const Tick holdup = psu.holdupTime(watts);
    const Tick sag = (holdup * 2) / 3;

    PowerRail tight(psu, watts);
    tight.addSag(0, sag, 0.0);
    tight.addSag(sag + tickUs, sag, 0.0);
    const fault::SagOutcome crashed = tight.evaluateSags();
    EXPECT_TRUE(crashed.railsFailed);
    // It dies inside the *second* sag.
    EXPECT_GT(crashed.failTick, sag + tickUs);

    PowerRail spaced(psu, watts);
    spaced.addSag(0, sag, 0.0);
    spaced.addSag(sag + tickSec, sag, 0.0);
    const fault::SagOutcome ok = spaced.evaluateSags();
    EXPECT_FALSE(ok.railsFailed);
    EXPECT_EQ(ok.recoveredAt, sag + tickSec + sag);
}

TEST(FaultInjectorTest, DisarmsOnDestruction)
{
    BackingStore store;
    {
        FaultInjector injector(store);
        injector.armCut(10, 1);
        EXPECT_TRUE(store.powerCutArmed());
        EXPECT_EQ(injector.cutTick(), 10u);
    }
    EXPECT_FALSE(store.powerCutArmed());
}

// --- SnG under the cursor ------------------------------------------

struct SngRig
{
    SngRig()
    {
        kern = std::make_unique<kernel::Kernel>();
        psm = std::make_unique<psm::Psm>();
        sng = std::make_unique<pecos::Sng>(
            *kern, *psm, pmem, std::vector<cache::L1Cache *>{});
    }

    std::unique_ptr<kernel::Kernel> kern;
    std::unique_ptr<psm::Psm> psm;
    mem::BackingStore pmem;
    std::unique_ptr<pecos::Sng> sng;
};

TEST(SngFault, HoldupViolationKeepsAByteExactSubset)
{
    // Reference run: an identically-seeded rig with unlimited
    // hold-up. Its reserved-region image is what the cut run's
    // writes would have produced had the rails survived.
    SngRig full;
    const auto full_report = full.sng->stop(0);
    ASSERT_FALSE(full_report.commitFailed);

    // Cut run: the rails die halfway through Drive-to-Idle.
    SngRig rig;
    const Tick holdup = full_report.processStopDone / 2;
    const auto report = rig.sng->stop(0, holdup);

    EXPECT_TRUE(report.commitFailed);
    EXPECT_EQ(report.cutTick, holdup);
    EXPECT_FALSE(rig.sng->hasCommit());
    EXPECT_GT(report.writesDropped, 0u);

    // Byte-exact prefix durability: every reserved-region byte
    // either matches the reference image (it landed before the cut,
    // including the durable prefix of the torn line) or reads as
    // zero (it was dropped). A third value would mean a write after
    // the cut leaked to media.
    const pecos::ReservedLayout layout(rig.psm->capacityBytes());
    const std::uint64_t span = std::uint64_t(16) << 20;
    std::vector<std::uint8_t> a(1 << 20), b(1 << 20);
    std::uint64_t kept = 0, lost = 0;
    for (std::uint64_t off = 0; off < span; off += a.size()) {
        full.pmem.read(layout.base + off, a.data(), a.size());
        rig.pmem.read(layout.base + off, b.data(), b.size());
        for (std::uint64_t i = 0; i < a.size(); ++i) {
            if (b[i] == a[i]) {
                kept += a[i] != 0;
            } else {
                ASSERT_EQ(b[i], 0u)
                    << "byte " << off + i
                    << " leaked past the cut";
                ++lost;
            }
        }
    }
    EXPECT_GT(kept, 0u) << "no write before the cut persisted";
    EXPECT_GT(lost, 0u) << "no write after the cut was dropped";

    // The next boot is cold.
    const auto go = rig.sng->resume(report.offlineDone + tickSec);
    EXPECT_TRUE(go.coldBoot);
}

TEST(SngFault, StopDisarmsItsOwnCut)
{
    SngRig rig;
    rig.sng->stop(0, tickMs);
    EXPECT_FALSE(rig.pmem.powerCutArmed());
}

TEST(SngFault, ExternallyArmedCutTakesPrecedence)
{
    SngRig rig;
    FaultInjector injector(rig.pmem);
    injector.armCut(2 * tickMs, 5);

    // stop() is told the PSU would last 16 ms, but the injector's
    // earlier cut wins — and stop() must leave it armed.
    const auto report = rig.sng->stop(0, 16 * tickMs);
    EXPECT_EQ(report.cutTick, 2 * tickMs);
    EXPECT_TRUE(report.commitFailed);
    EXPECT_TRUE(rig.pmem.powerCutArmed());
}

TEST(SngFault, GenerousHoldupCommitsDurably)
{
    SngRig rig;
    const auto report = rig.sng->stop(0, 55 * tickMs);
    EXPECT_FALSE(report.commitFailed);
    EXPECT_LT(report.commitAt, report.cutTick);
    EXPECT_TRUE(rig.sng->hasCommit());
    EXPECT_EQ(report.writesDropped, 0u);
    EXPECT_EQ(report.writesTorn, 0u);
}

// --- resume payload addressing (regression) ------------------------

TEST(SngFault, ResumeReadsPayloadFromTheSerializedRegion)
{
    SngRig rig;
    rig.sng->stop(0, 55 * tickMs);

    const pecos::ReservedLayout layout(rig.psm->capacityBytes());
    const auto go = rig.sng->resume(tickSec);
    ASSERT_FALSE(go.coldBoot);

    // Go must charge its context/MMIO reads against the payload
    // region Auto-Stop serialized — packed after the DCB entry
    // array — not against the entry array itself.
    EXPECT_EQ(go.payloadBase, layout.dcbPayloadAddr());
    std::uint64_t payload = 0;
    for (const auto &dev : rig.kern->devices().list())
        payload += dev->contextBytes() + dev->mmioBytes();
    EXPECT_EQ(go.payloadEnd, layout.dcbPayloadAddr() + payload);
    EXPECT_EQ(go.payloadBytesRead, payload);
    EXPECT_EQ(go.payloadBytesRead,
              rig.kern->devices().totalContextBytes()
                  + rig.kern->devices().totalMmioBytes());
}

TEST(SngFault, ResumeIssuesPsmTrafficForTheMmioImages)
{
    // The saved MMIO images flow back through the PSM: resume must
    // read at least payload/64 lines beyond what a payload-free
    // resume would.
    SngRig rig;
    rig.sng->stop(0, 55 * tickMs);

    const std::uint64_t reads_before = rig.psm->stats().reads;
    const auto go = rig.sng->resume(tickSec);
    ASSERT_FALSE(go.coldBoot);
    const std::uint64_t read_lines =
        rig.psm->stats().reads - reads_before;
    EXPECT_GE(read_lines, go.payloadBytesRead / 64);
}

// --- checkpoint ledger ---------------------------------------------

TEST(CheckpointLedgerTest, TornRecordReadsAsNoCommit)
{
    using persist::CheckpointLedger;

    BackingStore store;
    CheckpointLedger::Record record;
    record.magic = CheckpointLedger::recordMagic;
    record.seq = 3;
    record.slot = 1;
    record.bytes = 4096;
    record.bodySeed = 77;
    record.checksum = CheckpointLedger::checksumOf(record);
    EXPECT_TRUE(record.valid());

    // Any torn byte invalidates it.
    CheckpointLedger::Record torn = record;
    torn.bytes ^= 1;
    EXPECT_FALSE(torn.valid());
    torn = record;
    torn.checksum ^= 0x100;
    EXPECT_FALSE(torn.valid());
    CheckpointLedger::Record zero;
    EXPECT_FALSE(zero.valid());
}

TEST(CheckpointLedgerTest, BodyPatternRoundTrips)
{
    BackingStore store;
    psm::Psm psm;
    struct Port : mem::MemoryPort
    {
        explicit Port(psm::Psm &p) : p(p) {}
        mem::AccessResult
        access(const mem::MemRequest &req, Tick when) override
        {
            return p.access(req, when);
        }
        Tick fence(Tick when) override { return p.flush(when); }
        psm::Psm &p;
    } port(psm);
    mem::TimedMem pmem(port, &store);

    const mem::Addr addr = 0x10000;
    persist::writeBodyPattern(pmem, 0, addr, 12345, 9);
    EXPECT_TRUE(persist::verifyBodyPattern(store, addr, 12345, 9));
    // Wrong seed or a flipped byte must fail.
    EXPECT_FALSE(persist::verifyBodyPattern(store, addr, 12345, 10));
    std::uint8_t b;
    store.read(addr + 7777, &b, 1);
    b ^= 0x40;
    store.write(addr + 7777, &b, 1);
    EXPECT_FALSE(persist::verifyBodyPattern(store, addr, 12345, 9));
}

// --- campaign invariant fuzz ---------------------------------------

/**
 * 25 cuts x 5 modes x 2 PSUs = 250 seeded cut ticks, every one
 * required to resolve to resume-from-durable-commit or cold boot.
 */
TEST(CampaignFuzz, TwoHundredFiftyCutsZeroViolations)
{
    using Runner =
        fault::CampaignResult (*)(const fault::CampaignConfig &);
    const Runner runners[] = {
        fault::runSngCampaign,
        fault::runSysPcCampaign,
        fault::runSCheckPcCampaign,
        fault::runACheckPcCampaign,
        fault::runOpLogCampaign,
    };
    const PsuModel psus[] = {PsuModel::atx(), PsuModel::dellServer()};

    for (const Runner run : runners) {
        for (const PsuModel &psu : psus) {
            fault::CampaignConfig config;
            config.cuts = 25;
            config.seed = 20260807;
            config.psu = psu;
            const auto result = run(config);
            EXPECT_EQ(result.violations, 0u)
                << result.mode << "/" << result.psu << ": "
                << (result.violationNotes.empty()
                        ? std::string("(no notes)")
                        : result.violationNotes.front());
            EXPECT_EQ(result.cuts, config.cuts);
            EXPECT_EQ(result.resumes + result.coldBoots, result.cuts);
        }
    }
}

TEST(CampaignFuzz, SngSweepCoversEveryStopPhase)
{
    fault::CampaignConfig config;
    config.cuts = 40;
    config.seed = 5;
    const auto result = fault::runSngCampaign(config);
    EXPECT_EQ(result.violations, 0u);
    EXPECT_GT(result.phaseCount(fault::CutPhase::ProcessStop), 0u);
    EXPECT_GT(result.phaseCount(fault::CutPhase::DeviceStop), 0u);
    EXPECT_GT(result.phaseCount(fault::CutPhase::EpCut), 0u);
    EXPECT_GT(result.phaseCount(fault::CutPhase::PostCommit), 0u);
    // Cuts inside Stop really dropped bytes on the floor.
    EXPECT_GT(result.droppedWrites, 0u);
}

TEST(CampaignFuzz, OpLogSweepCoversAppendCommitAndAftermath)
{
    fault::CampaignConfig config;
    config.cuts = 40;
    config.seed = 5;
    const auto result = fault::runOpLogCampaign(config);
    EXPECT_EQ(result.violations, 0u)
        << (result.violationNotes.empty()
                ? std::string("(no notes)")
                : result.violationNotes.front());
    EXPECT_GT(result.phaseCount(fault::CutPhase::MidDump), 0u);
    EXPECT_GT(result.phaseCount(fault::CutPhase::CommitWindow), 0u);
    EXPECT_GT(result.phaseCount(fault::CutPhase::PostCommit), 0u);
    // Cuts mid-stream really dropped log writes on the floor. (Tears
    // need the cut strictly inside one line store's ~40 ns window —
    // too rare for 40 uniform cuts; the byte-offset property test in
    // test_net.cc owns that coverage.)
    EXPECT_GT(result.droppedWrites, 0u);
}

} // namespace
