/**
 * @file
 * Unit tests for the core timing model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.hh"
#include "mem/memory_port.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::cpu;

class StubMemory : public mem::MemoryPort
{
  public:
    explicit StubMemory(Tick latency) : latency(latency) {}

    mem::AccessResult
    access(const mem::MemRequest &, Tick when) override
    {
        ++count;
        mem::AccessResult result;
        result.completeAt = when + latency;
        result.mediaFreeAt = result.completeAt;
        return result;
    }

    Tick latency;
    std::uint64_t count = 0;
};

/** A fixed list of instructions. */
class ListStream : public InstrStream
{
  public:
    explicit ListStream(std::vector<Instr> instrs)
        : instrs(std::move(instrs))
    {}

    bool
    next(Instr &out) override
    {
        if (pos >= instrs.size())
            return false;
        out = instrs[pos++];
        return true;
    }

  private:
    std::vector<Instr> instrs;
    std::size_t pos = 0;
};

CoreParams
testCore()
{
    CoreParams p;
    p.dcache.capacityBytes = 512;
    return p;
}

TEST(Core, AluWorkRetiresAtIssueRate)
{
    EventQueue eq;
    StubMemory mem(100 * tickNs);
    Core core("c0", eq, testCore(), mem);

    ListStream stream(std::vector<Instr>(1000, {InstrKind::Alu, 0}));
    core.run(stream, 0);
    eq.run();

    EXPECT_TRUE(core.finished());
    EXPECT_EQ(core.stats().instructions, 1000u);
    // 1.6 GHz, CPI 1 -> 625 ps per instruction.
    EXPECT_EQ(core.localTime(), 1000 * 625u);
    EXPECT_NEAR(core.ipc(), 1.0, 0.01);
}

TEST(Core, LoadMissBlocksTheCore)
{
    EventQueue eq;
    StubMemory mem(100 * tickNs);
    Core core("c0", eq, testCore(), mem);

    ListStream stream({{InstrKind::Load, 0}, {InstrKind::Alu, 0}});
    core.run(stream, 0);
    eq.run();

    EXPECT_GE(core.localTime(), 100 * tickNs);
    EXPECT_GT(core.stats().loadStallTicks, 0u);
    EXPECT_LT(core.ipc(), 0.1);
}

TEST(Core, CachedLoadsDoNotStall)
{
    EventQueue eq;
    StubMemory mem(100 * tickNs);
    Core core("c0", eq, testCore(), mem);

    std::vector<Instr> instrs(100, {InstrKind::Load, 0});
    ListStream stream(instrs);
    core.run(stream, 0);
    eq.run();

    // One miss, then 99 hits at issue rate.
    EXPECT_EQ(mem.count, 1u);
    EXPECT_NEAR(core.ipc(), 100.0 / (100.0 + 160.0), 0.1);
}

TEST(Core, StoresRetireThroughStoreBuffer)
{
    EventQueue eq;
    StubMemory mem(1000 * tickNs);
    Core core("c0", eq, testCore(), mem);

    //8 distinct-line store misses fit the 8-entry store buffer; the
    // core keeps going without waiting 1000 ns each.
    std::vector<Instr> instrs;
    for (int i = 0; i < 8; ++i)
        instrs.push_back({InstrKind::Store, mem::Addr(i) * 64});
    ListStream stream(instrs);
    core.run(stream, 0);
    eq.run();

    EXPECT_LT(core.localTime(), 1000 * tickNs);
    EXPECT_EQ(core.stats().storeStallTicks, 0u);
}

TEST(Core, StoreBufferBackpressure)
{
    EventQueue eq;
    StubMemory mem(1000 * tickNs);
    CoreParams params = testCore();
    params.storeBufferEntries = 2;
    Core core("c0", eq, params, mem);

    std::vector<Instr> instrs;
    for (int i = 0; i < 6; ++i)
        instrs.push_back({InstrKind::Store, mem::Addr(i) * 64});
    ListStream stream(instrs);
    core.run(stream, 0);
    eq.run();

    EXPECT_GT(core.stats().storeStallTicks, 0u);
}

TEST(Core, StopParksTheCore)
{
    EventQueue eq;
    StubMemory mem(10 * tickNs);
    CoreParams params = testCore();
    params.episodeLimit = 16;
    Core core("c0", eq, params, mem);

    ListStream stream(
        std::vector<Instr>(100000, {InstrKind::Alu, 0}));
    core.run(stream, 0);
    // Let it start, then request a stop.
    eq.step();
    core.stop();
    eq.run();

    EXPECT_TRUE(core.idle());
    EXPECT_FALSE(core.finished());
    EXPECT_LT(core.stats().instructions, 100000u);
}

TEST(Core, FinishedCallbackFires)
{
    EventQueue eq;
    StubMemory mem(10 * tickNs);
    Core core("c0", eq, testCore(), mem);

    bool fired = false;
    core.onFinished([&] { fired = true; });
    ListStream stream({{InstrKind::Alu, 0}});
    core.run(stream, 0);
    eq.run();
    EXPECT_TRUE(fired);
    EXPECT_TRUE(core.finished());
}

TEST(Core, FrequencyScalesExecutionTime)
{
    EventQueue eq1, eq2;
    StubMemory mem1(100 * tickNs), mem2(100 * tickNs);
    CoreParams fast = testCore();
    CoreParams slow = testCore();
    slow.freqMhz = 400;  // the FPGA configuration
    Core a("fast", eq1, fast, mem1);
    Core b("slow", eq2, slow, mem2);

    std::vector<Instr> instrs(1000, {InstrKind::Alu, 0});
    ListStream s1(instrs), s2(instrs);
    a.run(s1, 0);
    b.run(s2, 0);
    eq1.run();
    eq2.run();
    EXPECT_EQ(b.localTime(), a.localTime() * 4);
}

TEST(Core, MemoryBoundWorkStallsMoreAtHigherFrequency)
{
    // The Fig. 14 effect: raising core frequency grows the *stall
    // share* of memory-bound work.
    auto stall_fraction = [](std::uint64_t mhz) {
        EventQueue eq;
        StubMemory mem(100 * tickNs);
        CoreParams params;
        params.freqMhz = mhz;
        params.dcache.capacityBytes = 512;
        Core core("c", eq, params, mem);
        std::vector<Instr> instrs;
        for (int i = 0; i < 2000; ++i) {
            // Streaming loads: mostly misses.
            instrs.push_back({InstrKind::Load, mem::Addr(i) * 64});
            instrs.push_back({InstrKind::Alu, 0});
        }
        ListStream stream(instrs);
        core.run(stream, 0);
        eq.run();
        return static_cast<double>(core.stats().loadStallTicks)
            / static_cast<double>(core.localTime());
    };
    EXPECT_GT(stall_fraction(1800), stall_fraction(800));
}

} // namespace

namespace
{

TEST(CoreIFetch, DisabledByDefault)
{
    EventQueue eq;
    StubMemory mem(100 * tickNs);
    Core core("c0", eq, testCore(), mem);
    EXPECT_EQ(core.icache(), nullptr);

    ListStream stream(std::vector<Instr>(100, {InstrKind::Alu, 0}));
    core.run(stream, 0);
    eq.run();
    EXPECT_EQ(core.stats().fetchStallTicks, 0u);
    EXPECT_EQ(mem.count, 0u);
}

TEST(CoreIFetch, SmallCodeFitsTheICache)
{
    EventQueue eq;
    StubMemory mem(100 * tickNs);
    CoreParams params = testCore();
    params.modelIFetch = true;
    Core core("c0", eq, params, mem);
    core.setCodeRegion(1 << 30, 8 * 1024);  // fits 16 KB I$

    ListStream stream(
        std::vector<Instr>(50000, {InstrKind::Alu, 0}));
    core.run(stream, 0);
    eq.run();
    // Cold misses only: 8 KB / 64 B = 128 fills, then steady hits.
    EXPECT_LE(mem.count, 128u);
    EXPECT_GT(core.ipc(), 0.6);
}

TEST(CoreIFetch, LargeCodeThrashesTheICache)
{
    EventQueue eq;
    StubMemory mem(100 * tickNs);
    CoreParams params = testCore();
    params.modelIFetch = true;
    params.branchProbability = 0.2;  // jumpy control flow
    Core core("c0", eq, params, mem);
    core.setCodeRegion(1 << 30, 4 << 20);  // 4 MB >> 16 KB I$

    ListStream stream(
        std::vector<Instr>(50000, {InstrKind::Alu, 0}));
    core.run(stream, 0);
    eq.run();
    EXPECT_GT(core.stats().fetchStallTicks, 0u);
    EXPECT_GT(mem.count, 1000u);
    EXPECT_LT(core.ipc(), 0.8);
}

TEST(CoreIFetch, RejectsTinyCodeRegion)
{
    EventQueue eq;
    StubMemory mem(10 * tickNs);
    CoreParams params = testCore();
    params.modelIFetch = true;
    Core core("c0", eq, params, mem);
    EXPECT_THROW(core.setCodeRegion(0, 32), lightpc::FatalError);
}

} // namespace
