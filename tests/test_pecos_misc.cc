/**
 * @file
 * Focused tests: the OC-PMEM reserved layout, SnG report
 * arithmetic, and Go's rescheduling order.
 */

#include <gtest/gtest.h>

#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "pecos/layout.hh"
#include "pecos/sng.hh"
#include "psm/psm.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::pecos;

TEST(ReservedLayout, SitsAtTheTopOfPmem)
{
    const std::uint64_t capacity = std::uint64_t(96) << 30;
    ReservedLayout layout(capacity);
    EXPECT_EQ(layout.base, capacity - (std::uint64_t(16) << 20));
    EXPECT_EQ(layout.bcbAddr(), layout.base);
    EXPECT_GT(layout.pcbAddr(), layout.bcbAddr());
    EXPECT_GT(layout.dcbAddr(), layout.pcbAddr());
    EXPECT_LT(layout.dcbAddr(), capacity);
}

TEST(ReservedLayout, PcbAreaHoldsTheBusySystem)
{
    ReservedLayout layout(std::uint64_t(96) << 30);
    // 121 processes of PcbEntry each must fit before the DCB area.
    const std::uint64_t pcb_bytes = 121 * sizeof(PcbEntry);
    EXPECT_LT(layout.pcbAddr() + pcb_bytes, layout.dcbAddr());
}

TEST(StopReport, PhaseArithmetic)
{
    StopReport report;
    report.start = 100;
    report.processStopDone = 300;
    report.deviceStopDone = 700;
    report.offlineDone = 1500;
    EXPECT_EQ(report.processStopTicks(), 200u);
    EXPECT_EQ(report.deviceStopTicks(), 400u);
    EXPECT_EQ(report.offlineTicks(), 800u);
    EXPECT_EQ(report.totalTicks(), 1400u);
    EXPECT_EQ(report.processStopTicks() + report.deviceStopTicks()
                  + report.offlineTicks(),
              report.totalTicks());
}

TEST(GoReport, TotalSpansStartToDone)
{
    GoReport report;
    report.start = 50;
    report.done = 850;
    EXPECT_EQ(report.totalTicks(), 800u);
}

TEST(Go, ReschedulesKernelTasksBeforeUserTasks)
{
    // Section IV-C: "Go schedules other kernel process tasks in
    // first and then user-level process tasks."
    kernel::Kernel kern;
    psm::Psm psm;
    mem::BackingStore pmem;
    Sng sng(kern, psm, pmem, {});
    sng.stop(0);
    sng.resume(100 * tickMs);

    for (std::uint32_t c = 0; c < kern.cores(); ++c) {
        bool seen_user = false;
        for (const kernel::Process *proc : kern.runQueue(c)) {
            if (proc->isKernelThread())
                EXPECT_FALSE(seen_user)
                    << "kernel thread queued after a user task on"
                       " core "
                    << c;
            else
                seen_user = true;
        }
    }
}

TEST(Go, RestoredTasksKeepTheirCores)
{
    kernel::Kernel kern;
    psm::Psm psm;
    mem::BackingStore pmem;
    Sng sng(kern, psm, pmem, {});

    // Record the per-core assignment Drive-to-Idle balances out.
    sng.stop(0);
    std::vector<int> parked_cpu(kern.processCount());
    for (std::size_t i = 0; i < kern.processCount(); ++i)
        parked_cpu[i] = kern.process(i).cpu();

    sng.resume(100 * tickMs);
    for (std::size_t i = 0; i < kern.processCount(); ++i) {
        if (parked_cpu[i] >= 0) {
            EXPECT_EQ(kern.process(i).cpu(), parked_cpu[i]);
        }
    }
}

TEST(Bcb, MagicDistinguishesColdBoot)
{
    mem::BackingStore pmem;
    // Garbage in the BCB area is not a commit.
    pmem.writeValue<std::uint64_t>((std::uint64_t(96) << 30)
                                       - (std::uint64_t(16) << 20),
                                   0x1234);
    kernel::Kernel kern;
    psm::Psm psm;
    Sng sng(kern, psm, pmem, {});
    EXPECT_FALSE(sng.hasCommit());
    EXPECT_TRUE(sng.resume(0).coldBoot);
}

TEST(Sng, ControlBlockBytesAccounted)
{
    kernel::Kernel kern;
    psm::Psm psm;
    mem::BackingStore pmem;
    Sng sng(kern, psm, pmem, {});
    const auto report = sng.stop(0);
    // At least one PCB per process, one DCB entry + context per
    // device, and the BCB.
    EXPECT_GE(report.controlBlockBytes,
              kern.processCount() * sizeof(PcbEntry)
                  + kern.devices().count() * sizeof(DcbEntry)
                  + sizeof(Bcb));
}

} // namespace
