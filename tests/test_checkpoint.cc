/**
 * @file
 * Tests for the persistence baselines (SysPC, A-CheckPC, S-CheckPC).
 */

#include <gtest/gtest.h>

#include "mem/memory_port.hh"
#include "mem/timed_mem.hh"
#include "persist/checkpoint.hh"
#include "power/psu.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::persist;

class FixedPort : public mem::MemoryPort
{
  public:
    explicit FixedPort(Tick latency) : latency(latency) {}

    mem::AccessResult
    access(const mem::MemRequest &, Tick when) override
    {
        mem::AccessResult result;
        result.completeAt = when + latency;
        return result;
    }

    Tick latency;
};

TEST(SysPc, DumpTakesSecondsForGigabyteImages)
{
    FixedPort port(200 * tickNs);
    mem::TimedMem mem(port);
    SysPc syspc(mem);
    const std::uint64_t image = std::uint64_t(2) << 30;
    const Tick done = syspc.dumpImage(0, image);
    // Fig. 20: orders of magnitude past any PSU hold-up time.
    EXPECT_GT(done, 100 * power::PsuModel::atx().spec().specHoldup);
    EXPECT_GT(ticksToSec(done), 1.0);
}

TEST(SysPc, LoadIsFasterThanDump)
{
    FixedPort port(100 * tickNs);
    mem::TimedMem mem(port);
    SysPc syspc(mem);
    const std::uint64_t image = std::uint64_t(1) << 30;
    EXPECT_LT(syspc.loadImage(0, image), syspc.dumpImage(0, image));
}

TEST(SCheckPc, PeriodicDumpsAccumulate)
{
    FixedPort port(100 * tickNs);
    mem::TimedMem mem(port);
    SCheckPc blcr(mem, tickSec);
    blcr.dump(0, 1 << 20);
    blcr.dump(tickSec, 1 << 20);
    EXPECT_EQ(blcr.dumps(), 2u);
}

TEST(SCheckPc, DumpScalesWithVmSize)
{
    FixedPort port(100 * tickNs);
    mem::TimedMem mem(port);
    SCheckPc blcr(mem, tickSec);
    const Tick small = blcr.dump(0, 1 << 20);
    const Tick large = blcr.dump(0, 64 << 20);
    EXPECT_GT(large, 20 * small);
}

/** Pass-through stream of N ALU instructions. */
class AluStream : public cpu::InstrStream
{
  public:
    explicit AluStream(std::uint64_t n) : remaining(n) {}

    bool
    next(cpu::Instr &out) override
    {
        if (remaining == 0)
            return false;
        --remaining;
        out = {cpu::InstrKind::Alu, 0};
        return true;
    }

  private:
    std::uint64_t remaining;
};

TEST(ACheckPc, InsertsCheckpointCopies)
{
    AluStream inner(100000);
    ACheckPcParams params;
    params.meanFunctionInstr = 500;
    ACheckPcStream wrapped(inner, params);

    cpu::Instr instr;
    std::uint64_t total = 0, loads = 0, stores = 0;
    while (wrapped.next(instr)) {
        ++total;
        loads += instr.kind == cpu::InstrKind::Load;
        stores += instr.kind == cpu::InstrKind::Store;
    }
    // ~200 checkpoints of ~32 lines each: load+store pairs.
    EXPECT_GT(wrapped.checkpoints(), 100u);
    EXPECT_EQ(loads, stores);
    EXPECT_GT(loads, 1000u);
    EXPECT_GT(total, 100000u);
    EXPECT_EQ(wrapped.copiedBytes() / 64, loads);
}

TEST(ACheckPc, CopiesTargetDramAndPmemRegions)
{
    AluStream inner(50000);
    ACheckPcParams params;
    params.meanFunctionInstr = 200;
    ACheckPcStream wrapped(inner, params);
    cpu::Instr instr;
    while (wrapped.next(instr)) {
        if (instr.kind == cpu::InstrKind::Load) {
            EXPECT_GE(instr.addr, params.dramBase);
        }
        if (instr.kind == cpu::InstrKind::Store) {
            EXPECT_GE(instr.addr, params.pmemBase);
        }
    }
}

TEST(ACheckPc, PreservesInnerInstructionCount)
{
    AluStream inner(10000);
    ACheckPcParams params;
    ACheckPcStream wrapped(inner, params);
    cpu::Instr instr;
    std::uint64_t alu = 0;
    while (wrapped.next(instr))
        alu += instr.kind == cpu::InstrKind::Alu;
    EXPECT_EQ(alu, 10000u);
}

TEST(ACheckPc, CheckpointFrequencyFollowsMean)
{
    AluStream inner(200000);
    ACheckPcParams params;
    params.meanFunctionInstr = 1000;
    ACheckPcStream wrapped(inner, params);
    cpu::Instr instr;
    while (wrapped.next(instr)) {
    }
    EXPECT_NEAR(static_cast<double>(wrapped.checkpoints()), 200.0,
                60.0);
}

} // namespace
