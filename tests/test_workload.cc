/**
 * @file
 * Tests for the Table II specs and the synthetic stream generators.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "workload/spec.hh"
#include "workload/stream_bench.hh"
#include "platform/system.hh"
#include "workload/synthetic.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::workload;

TEST(WorkloadSpec, TableHasSeventeenWorkloads)
{
    EXPECT_EQ(tableTwo().size(), 17u);
}

TEST(WorkloadSpec, LookupByName)
{
    const auto &mcf = findWorkload("mcf");
    EXPECT_EQ(mcf.category, Category::Spec);
    EXPECT_NEAR(mcf.rwRatio(), 345.0, 60.0);  // Table II: 345
    EXPECT_THROW(findWorkload("nope"), FatalError);
}

TEST(WorkloadSpec, LoadsDominateStores)
{
    // "the number of loads is 27x greater than that of stores, on
    // average" (Section VI-A).
    double sum = 0.0;
    for (const auto &spec : tableTwo())
        sum += spec.rwRatio();
    EXPECT_GT(sum / 17.0, 20.0);
    EXPECT_LT(sum / 17.0, 35.0);
}

TEST(WorkloadSpec, MultithreadFlagsMatchPaper)
{
    // HPC and in-memory DB run multithreaded; Crypto and SPEC do not.
    for (const auto &spec : tableTwo()) {
        const bool expect_mt = spec.category == Category::Hpc
            || spec.category == Category::InMemoryDb;
        EXPECT_EQ(spec.multithread, expect_mt) << spec.name;
    }
}

TEST(WorkloadSpec, CategoryNames)
{
    EXPECT_EQ(categoryName(Category::Crypto), "Crypto");
    EXPECT_EQ(categoryName(Category::InMemoryDb), "In-memory DB");
}

TEST(SyntheticStream, ProducesConfiguredInstructionCount)
{
    SyntheticConfig config;
    config.scaleDivisor = 25000;
    SyntheticStream stream(findWorkload("AES"), config, 0, 1 << 20);
    cpu::Instr instr;
    std::uint64_t n = 0;
    while (stream.next(instr))
        ++n;
    EXPECT_EQ(n, stream.totalInstructions());
    EXPECT_GT(n, 100000u);
}

TEST(SyntheticStream, MixMatchesSpec)
{
    SyntheticConfig config;
    config.scaleDivisor = 12000;
    const auto &spec = findWorkload("gcc");
    SyntheticStream stream(spec, config, 0, 1 << 20);
    cpu::Instr instr;
    std::uint64_t loads = 0, stores = 0, alu = 0;
    while (stream.next(instr)) {
        switch (instr.kind) {
          case cpu::InstrKind::Load:
            ++loads;
            break;
          case cpu::InstrKind::Store:
            ++stores;
            break;
          default:
            ++alu;
        }
    }
    const double total = static_cast<double>(loads + stores + alu);
    EXPECT_NEAR((loads + stores) / total, spec.memFraction, 0.01);
    // Table II counts are memory-level; the CPU-level load/store mix
    // is their expansion through the D$ hit rates.
    const double cpu_reads =
        spec.reads / (1.0 - spec.readHitRate);
    const double cpu_writes =
        spec.writes / (1.0 - spec.writeHitRate);
    EXPECT_NEAR(static_cast<double>(loads) / (loads + stores),
                cpu_reads / (cpu_reads + cpu_writes), 0.02);
}

TEST(SyntheticStream, DeterministicAndRewindable)
{
    SyntheticConfig config;
    config.scaleDivisor = 1200000;
    SyntheticStream a(findWorkload("Redis"), config, 0, 0);
    SyntheticStream b(findWorkload("Redis"), config, 0, 0);
    cpu::Instr ia, ib;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_EQ(a.next(ia), b.next(ib));
        ASSERT_EQ(ia.kind, ib.kind);
        ASSERT_EQ(ia.addr, ib.addr);
    }
    a.rewind();
    cpu::Instr first;
    a.next(first);
    SyntheticStream c(findWorkload("Redis"), config, 0, 0);
    cpu::Instr ic;
    c.next(ic);
    EXPECT_EQ(first.addr, ic.addr);
    EXPECT_EQ(first.kind, ic.kind);
}

TEST(SyntheticStream, ThreadsGetDisjointHotSets)
{
    SyntheticConfig config;
    config.scaleDivisor = 1200000;
    config.threads = 4;
    const auto &spec = findWorkload("Redis");
    SyntheticStream t0(spec, config, 0, 0);
    SyntheticStream t1(spec, config, 1, 0);
    // Hot accesses of thread 0 stay below thread 1's hot base.
    cpu::Instr instr;
    for (int i = 0; i < 2000; ++i) {
        t0.next(instr);
        if (instr.kind != cpu::InstrKind::Alu
            && instr.addr < config.threads * config.hotBytes)
            EXPECT_LT(instr.addr, config.hotBytes);
    }
    (void)t1;
}

TEST(SyntheticStream, MakeStreamsHonoursMultithreading)
{
    SyntheticConfig config;
    config.scaleDivisor = 1200000;
    const auto mt = makeStreams(findWorkload("Redis"), config, 8, 0);
    EXPECT_EQ(mt.size(), 8u);
    const auto st = makeStreams(findWorkload("mcf"), config, 8, 0);
    EXPECT_EQ(st.size(), 1u);
}

TEST(StreamBench, KernelShapes)
{
    EXPECT_EQ(streamKernelName(StreamKernel::Triad), "Triad");
    EXPECT_EQ(streamBytesPerIteration(StreamKernel::Copy), 16u);
    EXPECT_EQ(streamBytesPerIteration(StreamKernel::Add), 24u);
}

TEST(StreamBench, CopyEmitsLoadStorePairs)
{
    StreamWorkload copy(StreamKernel::Copy, 64, 0);
    cpu::Instr instr;
    for (int i = 0; i < 64; ++i) {
        ASSERT_TRUE(copy.next(instr));
        EXPECT_EQ(instr.kind, cpu::InstrKind::Load);
        ASSERT_TRUE(copy.next(instr));
        EXPECT_EQ(instr.kind, cpu::InstrKind::Store);
    }
    EXPECT_FALSE(copy.next(instr));
    EXPECT_EQ(copy.bytesMoved(), 64u * 16);
}

TEST(StreamBench, TriadMicroSequence)
{
    StreamWorkload triad(StreamKernel::Triad, 4, 0);
    cpu::Instr instr;
    // load b, load c, alu, alu, store a
    const cpu::InstrKind expected[] = {
        cpu::InstrKind::Load, cpu::InstrKind::Load,
        cpu::InstrKind::Alu, cpu::InstrKind::Alu,
        cpu::InstrKind::Store,
    };
    for (const auto kind : expected) {
        ASSERT_TRUE(triad.next(instr));
        EXPECT_EQ(instr.kind, kind);
    }
}

TEST(StreamBench, AddressesAreSequentialPerArray)
{
    StreamWorkload copy(StreamKernel::Copy, 16, 1 << 20);
    cpu::Instr a0, s0, a1, s1;
    copy.next(a0);
    copy.next(s0);
    copy.next(a1);
    copy.next(s1);
    EXPECT_EQ(a1.addr, a0.addr + 8);
    EXPECT_EQ(s1.addr, s0.addr + 8);
}

TEST(StreamBench, ThreadsChunkTheArrays)
{
    StreamWorkload t0(StreamKernel::Copy, 100, 0, 0, 4);
    StreamWorkload t3(StreamKernel::Copy, 100, 0, 3, 4);
    EXPECT_EQ(t0.iterations(), 25u);
    EXPECT_EQ(t3.iterations(), 25u);
    cpu::Instr i0, i3;
    t0.next(i0);
    t3.next(i3);
    EXPECT_EQ(i3.addr - i0.addr, 75u * 8);
}

TEST(StreamBench, RejectsBadConfig)
{
    EXPECT_THROW(StreamWorkload(StreamKernel::Copy, 0, 0),
                 lightpc::FatalError);
    EXPECT_THROW(StreamWorkload(StreamKernel::Copy, 10, 0, 4, 4),
                 lightpc::FatalError);
}

} // namespace

namespace
{

TEST(MixedStreams, OneStreamPerWorkload)
{
    SyntheticConfig config;
    config.scaleDivisor = 100000;
    const auto streams = makeMixedStreams(
        {"Redis", "mcf", "AES"}, config, 1 << 20);
    EXPECT_EQ(streams.size(), 3u);
}

TEST(MixedStreams, RegionsAreDisjoint)
{
    SyntheticConfig config;
    config.scaleDivisor = 100000;
    auto streams = makeMixedStreams({"AES", "SHA512"}, config, 0);
    // Collect address ranges touched by each stream.
    std::vector<std::pair<mem::Addr, mem::Addr>> ranges;
    for (auto &stream : streams) {
        mem::Addr lo = ~mem::Addr(0), hi = 0;
        cpu::Instr instr;
        for (int i = 0; i < 50000 && stream->next(instr); ++i) {
            if (instr.kind == cpu::InstrKind::Alu)
                continue;
            lo = std::min(lo, instr.addr);
            hi = std::max(hi, instr.addr);
        }
        ranges.emplace_back(lo, hi);
    }
    EXPECT_TRUE(ranges[0].second < ranges[1].first
                || ranges[1].second < ranges[0].first);
}

TEST(MixedStreams, RunsOnAPlatform)
{
    SyntheticConfig config;
    config.scaleDivisor = 60000;
    auto streams = makeMixedStreams(
        {"Redis", "gcc", "bzip2", "mcf"}, config,
        platform::System::workloadBase);
    std::vector<cpu::InstrStream *> raw;
    for (auto &s : streams)
        raw.push_back(s.get());

    platform::SystemConfig sys_config;
    sys_config.kind = platform::PlatformKind::LightPC;
    platform::System system(sys_config);
    const auto result = system.runStreams(raw);
    EXPECT_GT(result.instructions, 0u);
    // Each of the four cores retired its own workload.
    for (std::uint32_t c = 0; c < 4; ++c)
        EXPECT_GT(system.core(c).stats().instructions, 0u);
}

} // namespace
