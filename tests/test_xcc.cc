/**
 * @file
 * Unit and property tests for the XOR-based ECC codec (XCC).
 */

#include <gtest/gtest.h>

#include "psm/xcc.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::psm;

HalfLine
randomHalf(Rng &rng)
{
    HalfLine h;
    for (auto &b : h)
        b = static_cast<std::uint8_t>(rng.next());
    return h;
}

TEST(Xcc, EncodeIsXor)
{
    HalfLine a{}, b{};
    a[0] = 0xf0;
    b[0] = 0x0f;
    const HalfLine parity = XccCodec::encode(a, b);
    EXPECT_EQ(parity[0], 0xff);
    for (std::size_t i = 1; i < parity.size(); ++i)
        EXPECT_EQ(parity[i], 0);
}

TEST(Xcc, ReconstructRoundTrip)
{
    Rng rng(42);
    for (int trial = 0; trial < 200; ++trial) {
        const HalfLine a = randomHalf(rng);
        const HalfLine b = randomHalf(rng);
        const HalfLine parity = XccCodec::encode(a, b);
        EXPECT_EQ(XccCodec::reconstruct(b, parity), a);
        EXPECT_EQ(XccCodec::reconstruct(a, parity), b);
    }
}

TEST(Xcc, ConsistencyCheck)
{
    Rng rng(43);
    HalfLine a = randomHalf(rng);
    HalfLine b = randomHalf(rng);
    HalfLine parity = XccCodec::encode(a, b);
    EXPECT_TRUE(XccCodec::consistent(a, b, parity));
    a[5] ^= 0x10;
    EXPECT_FALSE(XccCodec::consistent(a, b, parity));
}

TEST(Xcc, DecodeCleanCodeword)
{
    Rng rng(44);
    HalfLine a = randomHalf(rng);
    HalfLine b = randomHalf(rng);
    const HalfLine parity = XccCodec::encode(a, b);
    const auto out = XccCodec::decode(a, b, parity, false, false);
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.corrected);
    EXPECT_FALSE(out.containment);
}

TEST(Xcc, DecodeCorrectsKnownBadHalf)
{
    Rng rng(45);
    const HalfLine a0 = randomHalf(rng);
    const HalfLine b0 = randomHalf(rng);
    const HalfLine parity = XccCodec::encode(a0, b0);

    HalfLine a = a0, b = b0;
    a.fill(0xee);  // device A failed
    const auto out = XccCodec::decode(a, b, parity, true, false);
    EXPECT_TRUE(out.ok);
    EXPECT_TRUE(out.corrected);
    EXPECT_EQ(a, a0);

    HalfLine a2 = a0, b2 = b0;
    b2.fill(0x11);  // device B failed
    const auto out2 = XccCodec::decode(a2, b2, parity, false, true);
    EXPECT_TRUE(out2.ok);
    EXPECT_EQ(b2, b0);
}

TEST(Xcc, BothHalvesBadRaisesContainment)
{
    Rng rng(46);
    HalfLine a = randomHalf(rng);
    HalfLine b = randomHalf(rng);
    const HalfLine parity = XccCodec::encode(a, b);
    const auto out = XccCodec::decode(a, b, parity, true, true);
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.containment);
}

TEST(Xcc, SilentCorruptionRaisesContainment)
{
    Rng rng(47);
    HalfLine a = randomHalf(rng);
    HalfLine b = randomHalf(rng);
    const HalfLine parity = XccCodec::encode(a, b);
    a[3] ^= 0x40;  // corruption with no known-bad device
    const auto out = XccCodec::decode(a, b, parity, false, false);
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.containment);
}

/** Property sweep: random corruption of one known-bad half always
 *  recovers the original data. */
class XccRecovery : public ::testing::TestWithParam<int>
{
};

TEST_P(XccRecovery, RecoversUnderRandomFaults)
{
    Rng rng(1000 + GetParam());
    const HalfLine a0 = randomHalf(rng);
    const HalfLine b0 = randomHalf(rng);
    const HalfLine parity = XccCodec::encode(a0, b0);

    HalfLine a = a0, b = b0;
    const bool fault_a = rng.chance(0.5);
    if (fault_a)
        a = randomHalf(rng);
    else
        b = randomHalf(rng);
    const auto out = XccCodec::decode(a, b, parity, fault_a, !fault_a);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(a, a0);
    EXPECT_EQ(b, b0);
}

INSTANTIATE_TEST_SUITE_P(RandomFaults, XccRecovery,
                         ::testing::Range(0, 50));

} // namespace
