/**
 * @file
 * Parameterized fidelity sweep: every Table II workload, replayed on
 * the LightPC platform, must reproduce its published cache behaviour
 * and memory-level traffic mix.
 */

#include <gtest/gtest.h>

#include "platform/system.hh"
#include "workload/spec.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::platform;

class TableTwoFidelity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TableTwoFidelity, HitRatesAndTrafficMatch)
{
    const auto &spec = workload::findWorkload(GetParam());

    SystemConfig config;
    config.kind = PlatformKind::LightPC;
    config.scaleDivisor = 25000;
    System system(config);
    const auto result = system.run(spec);

    // D$ hit rates within 6 pp of the published values.
    EXPECT_NEAR(result.loadHitRate, spec.readHitRate, 0.06)
        << spec.name;
    EXPECT_NEAR(result.storeHitRate, spec.writeHitRate, 0.06)
        << spec.name;

    // Memory-level read/write mix tracks the table's ratio. The
    // band is wide because the extremes are small-sample at test
    // scale (SHA512's ~0.1% miss rates leave only hundreds of
    // memory ops) and dirty lines still resident at the end of a
    // short run withhold their writebacks.
    ASSERT_GT(result.psmStats.writes, 0u);
    const double ratio = static_cast<double>(result.psmStats.reads)
        / static_cast<double>(result.psmStats.writes);
    EXPECT_GT(ratio, spec.rwRatio() / 3.0) << spec.name;
    EXPECT_LT(ratio, spec.rwRatio() * 3.0) << spec.name;

    // Threading per the table.
    const bool multicore =
        system.core(1).stats().instructions > 0;
    EXPECT_EQ(multicore, spec.multithread) << spec.name;
}

std::vector<std::string>
allWorkloads()
{
    std::vector<std::string> names;
    for (const auto &spec : lightpc::workload::tableTwo())
        names.push_back(spec.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllSeventeen, TableTwoFidelity,
    ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
