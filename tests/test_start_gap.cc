/**
 * @file
 * Unit and property tests for Start-Gap wear leveling.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "psm/start_gap.hh"
#include "sim/logging.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::psm;

StartGapParams
smallParams(bool randomize = false)
{
    StartGapParams p;
    p.lines = 64;
    p.pageLines = 4;
    p.writeThreshold = 10;
    p.randomize = randomize;
    return p;
}

/** The core invariant: the mapping is a bijection into lines+1
 *  slots, with the gap slot unused. */
void
expectBijective(const StartGap &sg)
{
    std::set<std::uint64_t> used;
    for (std::uint64_t la = 0; la < sg.params().lines; ++la) {
        const std::uint64_t pa = sg.remap(la);
        EXPECT_LE(pa, sg.params().lines);
        EXPECT_NE(pa, sg.gap()) << "logical line " << la
                                << " mapped onto the gap";
        EXPECT_TRUE(used.insert(pa).second)
            << "collision at physical slot " << pa;
    }
}

TEST(StartGap, InitialMappingIsIdentityWithoutRandomizer)
{
    StartGap sg(smallParams());
    for (std::uint64_t la = 0; la < 64; ++la)
        EXPECT_EQ(sg.remap(la), la);
}

TEST(StartGap, BijectiveInitially)
{
    expectBijective(StartGap(smallParams()));
    expectBijective(StartGap(smallParams(true)));
}

TEST(StartGap, GapMovesEveryThresholdWrites)
{
    StartGap sg(smallParams());
    for (int i = 0; i < 9; ++i)
        EXPECT_FALSE(sg.recordWrite());
    EXPECT_TRUE(sg.recordWrite());
    EXPECT_EQ(sg.totalMoves(), 1u);
    EXPECT_EQ(sg.gap(), 63u);  // N -> N-1
}

TEST(StartGap, BijectiveAfterManyMoves)
{
    StartGap sg(smallParams());
    for (int w = 0; w < 10 * 200; ++w)
        sg.recordWrite();
    EXPECT_EQ(sg.totalMoves(), 200u);
    expectBijective(sg);
}

TEST(StartGap, BijectiveAfterManyMovesWithRandomizer)
{
    StartGap sg(smallParams(true));
    for (int w = 0; w < 10 * 333; ++w)
        sg.recordWrite();
    expectBijective(sg);
}

TEST(StartGap, GapWrapIncrementsStart)
{
    StartGap sg(smallParams());
    // 65 moves: gap walks 64 -> 0, then wraps with start++.
    for (std::uint64_t m = 0; m < 65; ++m)
        for (int w = 0; w < 10; ++w)
            sg.recordWrite();
    EXPECT_EQ(sg.start(), 1u);
    EXPECT_EQ(sg.gap(), sg.params().lines);
    expectBijective(sg);
}

TEST(StartGap, FullRotationShiftsEverything)
{
    StartGap sg(smallParams());
    // After N+1 moves the whole address space has rotated by one.
    for (std::uint64_t m = 0; m < 65; ++m)
        for (int w = 0; w < 10; ++w)
            sg.recordWrite();
    for (std::uint64_t la = 0; la < 63; ++la)
        EXPECT_EQ(sg.remap(la), la + 1);
}

TEST(StartGap, EachMoveDisplacesExactlyOneLine)
{
    StartGap sg(smallParams());
    std::vector<std::uint64_t> before(64);
    for (std::uint64_t la = 0; la < 64; ++la)
        before[la] = sg.remap(la);
    for (int w = 0; w < 10; ++w)
        sg.recordWrite();
    int changed = 0;
    for (std::uint64_t la = 0; la < 64; ++la)
        changed += sg.remap(la) != before[la] ? 1 : 0;
    EXPECT_EQ(changed, 1);
}

TEST(StartGap, RandomizerPreservesPageAdjacency)
{
    StartGap sg(smallParams(true));
    // Lines within a randomizer page stay adjacent.
    for (std::uint64_t page = 0; page < 16; ++page) {
        const std::uint64_t base = sg.remap(page * 4);
        for (std::uint64_t off = 1; off < 4; ++off)
            EXPECT_EQ(sg.remap(page * 4 + off), base + off);
    }
}

TEST(StartGap, RandomizerScattersPages)
{
    StartGapParams p;
    p.lines = 1 << 16;
    p.pageLines = 32;
    p.randomize = true;
    StartGap sg(p);
    // Consecutive pages should not stay consecutive.
    int adjacent = 0;
    for (std::uint64_t page = 0; page + 1 < 256; ++page) {
        const std::uint64_t a = sg.remap(page * 32) / 32;
        const std::uint64_t b = sg.remap((page + 1) * 32) / 32;
        adjacent += (b == a + 1) ? 1 : 0;
    }
    EXPECT_LT(adjacent, 16);
}

TEST(StartGap, SaveRestoreRoundTrip)
{
    StartGap sg(smallParams(true));
    for (int w = 0; w < 137; ++w)
        sg.recordWrite();
    const StartGapState saved = sg.save();

    StartGap fresh(smallParams(true));
    fresh.restore(saved);
    for (std::uint64_t la = 0; la < 64; ++la)
        EXPECT_EQ(fresh.remap(la), sg.remap(la));
    EXPECT_EQ(fresh.totalMoves(), sg.totalMoves());
}

TEST(StartGap, RestoreRejectsWrongSeed)
{
    StartGap sg(smallParams(true));
    StartGapState state = sg.save();
    state.randomizerSeed ^= 1;
    EXPECT_THROW(sg.restore(state), FatalError);
}

TEST(StartGap, StateFitsInSixtyFourBytes)
{
    // "taking less than 64B per 4TB~6TB memory" (Section VIII).
    EXPECT_LE(sizeof(StartGapState), 64u);
}

TEST(StartGap, RejectsBadParams)
{
    StartGapParams p;
    p.lines = 1;
    EXPECT_THROW(StartGap{p}, FatalError);
    p = smallParams();
    p.writeThreshold = 0;
    EXPECT_THROW(StartGap{p}, FatalError);
    p = smallParams();
    p.pageLines = 5;  // does not divide 64
    EXPECT_THROW(StartGap{p}, FatalError);
}

/** Property sweep over sizes/seeds: always bijective after churn. */
struct SgCase
{
    std::uint64_t lines;
    std::uint64_t page_lines;
    std::uint64_t seed;
};

class StartGapProperty : public ::testing::TestWithParam<SgCase>
{
};

TEST_P(StartGapProperty, BijectiveUnderChurn)
{
    const SgCase c = GetParam();
    StartGapParams p;
    p.lines = c.lines;
    p.pageLines = c.page_lines;
    p.writeThreshold = 3;
    p.randomizerSeed = c.seed;
    StartGap sg(p);
    for (int w = 0; w < 1000; ++w)
        sg.recordWrite();
    expectBijective(sg);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, StartGapProperty,
    ::testing::Values(SgCase{32, 1, 1}, SgCase{32, 4, 2},
                      SgCase{96, 8, 3}, SgCase{128, 32, 4},
                      SgCase{100, 10, 5}, SgCase{2048, 32, 6}));

} // namespace
