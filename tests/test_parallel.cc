/**
 * @file
 * Tests for the parallel campaign engine: ParallelExecutor coverage
 * and exception semantics, the determinism contract (a campaign's
 * digest is bit-identical at every thread count), and the
 * thread-safety of the shared logging sink.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/campaign.hh"
#include "fault/compound.hh"
#include "fault/ras_campaign.hh"
#include "net/service_plane.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using sim::ParallelExecutor;

// --- executor ------------------------------------------------------

TEST(ParallelExecutor, ResolvesThreadKnob)
{
    EXPECT_GE(sim::hardwareThreads(), 1u);
    EXPECT_EQ(sim::resolveThreads(0), sim::hardwareThreads());
    EXPECT_EQ(sim::resolveThreads(3), 3u);
    EXPECT_EQ(ParallelExecutor(0).threads(), sim::hardwareThreads());
    EXPECT_EQ(ParallelExecutor(5).threads(), 5u);
}

TEST(ParallelExecutor, EveryIndexRunsExactlyOnce)
{
    constexpr std::uint64_t n = 1000;
    std::vector<std::atomic<std::uint32_t>> hits(n);
    ParallelExecutor pool(4);
    pool.forEach(n, [&hits](std::uint64_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ParallelExecutor, HandlesDegenerateCounts)
{
    ParallelExecutor pool(4);
    std::atomic<std::uint64_t> ran{0};
    pool.forEach(0, [&ran](std::uint64_t) { ++ran; });
    EXPECT_EQ(ran.load(), 0u);

    // Fewer trials than workers: every index still runs once.
    pool.forEach(2, [&ran](std::uint64_t) { ++ran; });
    EXPECT_EQ(ran.load(), 2u);
}

TEST(ParallelExecutor, MapLandsResultsInCanonicalSlots)
{
    ParallelExecutor pool(4);
    const std::vector<std::uint64_t> out = pool.map<std::uint64_t>(
        257, [](std::uint64_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::uint64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelExecutor, ReduceFoldsInAscendingIndexOrder)
{
    // The fold order must be the canonical index order even when
    // completion order is scrambled across 4 workers.
    ParallelExecutor pool(4);
    const std::vector<std::uint64_t> folded =
        pool.reduce<std::vector<std::uint64_t>>(
            200, {},
            [](std::uint64_t i) {
                return std::vector<std::uint64_t>{i};
            },
            [](std::vector<std::uint64_t> &acc,
               const std::vector<std::uint64_t> &part) {
                acc.insert(acc.end(), part.begin(), part.end());
            });
    ASSERT_EQ(folded.size(), 200u);
    for (std::uint64_t i = 0; i < folded.size(); ++i)
        EXPECT_EQ(folded[i], i);
}

TEST(ParallelExecutor, FirstTrialExceptionPropagates)
{
    ParallelExecutor pool(4);
    EXPECT_THROW(
        pool.forEach(100,
                     [](std::uint64_t i) {
                         if (i == 37)
                             throw std::runtime_error("trial 37");
                     }),
        std::runtime_error);

    // The pool is reusable after a failed run.
    std::atomic<std::uint64_t> ran{0};
    pool.forEach(10, [&ran](std::uint64_t) { ++ran; });
    EXPECT_EQ(ran.load(), 10u);
}

// --- determinism: parallel == sequential ---------------------------

TEST(ParallelDeterminism, FaultCampaignDigestIsThreadInvariant)
{
    fault::CampaignConfig cfg;
    cfg.cuts = 24;
    cfg.seed = 7;

    cfg.threads = 1;
    const fault::CampaignResult seq = runSngCampaign(cfg);
    cfg.threads = 4;
    const fault::CampaignResult par = runSngCampaign(cfg);

    EXPECT_EQ(seq.violations, 0u);
    EXPECT_EQ(par.digest, seq.digest);
    EXPECT_EQ(par.cuts, seq.cuts);
    EXPECT_EQ(par.phaseCuts, seq.phaseCuts);
    EXPECT_EQ(par.resumes, seq.resumes);
    EXPECT_EQ(par.coldBoots, seq.coldBoots);
    EXPECT_EQ(par.droppedWrites, seq.droppedWrites);
    EXPECT_EQ(par.tornWrites, seq.tornWrites);
    EXPECT_EQ(par.violationNotes, seq.violationNotes);
}

TEST(ParallelDeterminism, ImageCampaignDigestIsThreadInvariant)
{
    fault::CampaignConfig cfg;
    cfg.cuts = 16;
    cfg.seed = 9;

    cfg.threads = 1;
    const fault::CampaignResult seq = runSysPcCampaign(cfg);
    cfg.threads = 3;  // deliberately not a divisor of cuts
    const fault::CampaignResult par = runSysPcCampaign(cfg);

    EXPECT_EQ(seq.violations, 0u);
    EXPECT_EQ(par.digest, seq.digest);
    EXPECT_EQ(par.phaseCuts, seq.phaseCuts);
    EXPECT_EQ(par.resumes, seq.resumes);
}

TEST(ParallelDeterminism, CompoundCampaignDigestIsThreadInvariant)
{
    fault::CompoundConfig cfg;
    cfg.trials = 24;
    cfg.seed = 2026;

    cfg.threads = 1;
    const fault::CompoundResult seq = runCompoundCampaign(cfg);
    cfg.threads = 4;
    const fault::CompoundResult par = runCompoundCampaign(cfg);

    EXPECT_EQ(seq.violations, 0u);
    EXPECT_EQ(par.digest, seq.digest);
    EXPECT_EQ(par.trials, seq.trials);
    EXPECT_EQ(par.stopPhaseCuts, seq.stopPhaseCuts);
    EXPECT_EQ(par.goPhaseCuts, seq.goPhaseCuts);
    EXPECT_EQ(par.maxCutEpochs, seq.maxCutEpochs);
    EXPECT_EQ(par.violationNotes, seq.violationNotes);
}

TEST(ParallelDeterminism, RasCampaignDigestIsThreadInvariant)
{
    fault::RasCampaignConfig cfg;
    cfg.bers = {0.0, 1e-4};
    cfg.wearLevels = {0.0};
    cfg.seedsPerCell = 4;
    cfg.opsPerTrial = 300;
    cfg.seed = 3;

    cfg.threads = 1;
    const fault::RasCampaignResult seq = runRasCampaign(cfg);
    cfg.threads = 4;
    const fault::RasCampaignResult par = runRasCampaign(cfg);

    EXPECT_EQ(seq.violations, 0u);
    EXPECT_EQ(seq.sdcEvents, 0u);
    EXPECT_EQ(par.digest, seq.digest);
    EXPECT_EQ(par.trials, seq.trials);
    ASSERT_EQ(par.cells.size(), seq.cells.size());
    for (std::size_t c = 0; c < seq.cells.size(); ++c) {
        EXPECT_EQ(par.cells[c].policy, seq.cells[c].policy);
        EXPECT_EQ(par.cells[c].trials, seq.cells[c].trials);
        EXPECT_EQ(par.cells[c].checkedReads,
                  seq.cells[c].checkedReads);
        EXPECT_EQ(par.cells[c].corrected, seq.cells[c].corrected);
        EXPECT_EQ(par.cells[c].retired, seq.cells[c].retired);
    }
}

TEST(ParallelDeterminism, ServiceSuiteMatchesSequentialRuns)
{
    std::vector<net::ServiceConfig> configs;
    for (const net::PersistMode mode :
         {net::PersistMode::SnG, net::PersistMode::SysPc}) {
        net::ServiceConfig cfg;
        cfg.mode = mode;
        cfg.runFor = 400 * tickMs;
        cfg.drainGrace = 2000 * tickMs;
        cfg.cuts = 1;
        cfg.offDwell = 50 * tickMs;
        cfg.fleet.clients = 200;
        cfg.fleet.arrivalsPerSec = 1000.0;
        cfg.seed = 17;
        configs.push_back(cfg);
    }

    const std::vector<net::ServiceResult> par =
        net::runServiceSuite(configs, 2);
    ASSERT_EQ(par.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const net::ServiceResult seq = net::runService(configs[i]);
        EXPECT_EQ(par[i].mode, configs[i].mode);
        EXPECT_EQ(par[i].digest, seq.digest)
            << net::persistModeName(configs[i].mode);
        EXPECT_EQ(par[i].completed, seq.completed);
        EXPECT_TRUE(par[i].violations.empty());
    }
}

// --- logging under concurrency -------------------------------------

TEST(ParallelLogging, ConcurrentWarnLinesNeverInterleave)
{
    // Redirect the sink, hammer it from 4 workers, and require every
    // captured line to be one intact message.
    std::ostringstream captured;
    std::streambuf *old = std::cerr.rdbuf(captured.rdbuf());

    constexpr std::uint64_t n = 400;
    ParallelExecutor pool(4);
    pool.forEach(n, [](std::uint64_t i) {
        warn("line-", i, "-interleave-probe");
    });

    std::cerr.rdbuf(old);

    std::istringstream in(captured.str());
    std::string line;
    std::vector<bool> seen(n, false);
    std::uint64_t lines = 0;
    const std::string prefix = "warn: line-";
    const std::string suffix = "-interleave-probe";
    while (std::getline(in, line)) {
        ++lines;
        ASSERT_GT(line.size(), prefix.size() + suffix.size())
            << "torn log line: '" << line << "'";
        ASSERT_EQ(line.substr(0, prefix.size()), prefix)
            << "torn log line: '" << line << "'";
        ASSERT_EQ(line.substr(line.size() - suffix.size()), suffix)
            << "torn log line: '" << line << "'";
        const std::string mid = line.substr(
            prefix.size(),
            line.size() - prefix.size() - suffix.size());
        ASSERT_FALSE(mid.empty());
        ASSERT_EQ(mid.find_first_not_of("0123456789"),
                  std::string::npos)
            << "torn log line: '" << line << "'";
        const std::uint64_t idx = std::stoull(mid);
        ASSERT_LT(idx, n);
        EXPECT_FALSE(seen[idx]) << "duplicated line " << idx;
        seen[idx] = true;
    }
    EXPECT_EQ(lines, n);
}

} // namespace
