/**
 * @file
 * Unit tests for the PRAM, DRAM, and PMEM DIMM timing models.
 */

#include <gtest/gtest.h>

#include "mem/dram_device.hh"
#include "mem/pmem_dimm.hh"
#include "mem/pram_device.hh"
#include "sim/rng.hh"
#include "stats/summary.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::mem;

TEST(PramDevice, ReadLatencyIsConfigured)
{
    PramDevice dev;
    const auto result = dev.read(1000);
    EXPECT_EQ(result.completeAt, 1000 + dev.params().readLatency);
    EXPECT_EQ(result.mediaFreeAt, result.completeAt);
}

TEST(PramDevice, WriteOccupiesCoolingWindow)
{
    PramDevice dev;
    const auto result = dev.write(0, 0, /*early_return=*/false);
    EXPECT_EQ(result.completeAt, dev.params().writeLatency);
    EXPECT_EQ(dev.busyUntil(), dev.params().writeLatency);
}

TEST(PramDevice, EarlyReturnCompletesAtAcceptance)
{
    PramDevice dev;
    const auto result = dev.write(100, 0, /*early_return=*/true);
    EXPECT_EQ(result.completeAt, 100u);
    EXPECT_EQ(result.mediaFreeAt, 100 + dev.params().writeLatency);
    // The media is still busy: a read queues behind the write.
    const auto read = dev.read(150);
    EXPECT_EQ(read.completeAt,
              100 + dev.params().writeLatency
                  + dev.params().readLatency);
}

TEST(PramDevice, SerializesBackToBackAccesses)
{
    PramDevice dev;
    const auto first = dev.read(0);
    const auto second = dev.read(0);
    EXPECT_EQ(second.completeAt,
              first.completeAt + dev.params().readLatency);
    EXPECT_EQ(dev.stallTicks(), first.completeAt);
}

TEST(PramDevice, WearTracksRegions)
{
    PramParams params;
    params.capacityBytes = 4 << 20;
    params.wearRegionBytes = 1 << 20;
    PramDevice dev(params);
    dev.write(0, 0, true);
    dev.write(0, (1 << 20) + 5, true);
    dev.write(0, 7, true);
    EXPECT_EQ(dev.wearByRegion()[0], 2u);
    EXPECT_EQ(dev.wearByRegion()[1], 1u);
    EXPECT_EQ(dev.maxRegionWear(), 2u);
}

TEST(PramDevice, LifetimeShrinksWithWear)
{
    PramParams params;
    params.enduranceCycles = 100;
    PramDevice dev(params);
    EXPECT_DOUBLE_EQ(dev.lifetimeRemaining(), 1.0);
    for (int i = 0; i < 50; ++i)
        dev.write(0, 0, true);
    EXPECT_NEAR(dev.lifetimeRemaining(), 0.5, 0.01);
}

TEST(PramDevice, ResetClearsState)
{
    PramDevice dev;
    dev.write(0, 0, true);
    dev.reset();
    EXPECT_EQ(dev.busyUntil(), 0u);
    EXPECT_EQ(dev.writeCount(), 0u);
    EXPECT_EQ(dev.maxRegionWear(), 0u);
}

TEST(DramDevice, RowHitIsFasterThanMiss)
{
    DramDevice dev;
    MemRequest req;
    req.addr = 0;
    const auto miss = dev.access(req, 0);
    EXPECT_FALSE(miss.rowBufferHit);
    const auto hit = dev.access(req, miss.completeAt);
    EXPECT_TRUE(hit.rowBufferHit);
    EXPECT_EQ(miss.completeAt, dev.params().rowMissLatency);
    EXPECT_EQ(hit.completeAt - miss.completeAt,
              dev.params().rowHitLatency);
}

TEST(DramDevice, DifferentBanksDoNotConflict)
{
    DramDevice dev;
    MemRequest a, b;
    a.addr = 0;
    b.addr = dev.params().rowBytes;  // next row -> next bank
    const auto ra = dev.access(a, 0);
    const auto rb = dev.access(b, 0);
    // Both start at 0 in their own bank.
    EXPECT_EQ(ra.completeAt, rb.completeAt);
}

TEST(DramDevice, SameBankConflicts)
{
    DramDevice dev;
    MemRequest a, b;
    a.addr = 0;
    b.addr = dev.params().rowBytes * dev.params().banks;  // same bank
    const auto ra = dev.access(a, 0);
    const auto rb = dev.access(b, 0);
    EXPECT_GT(rb.completeAt, ra.completeAt);
    EXPECT_FALSE(rb.rowBufferHit);
}

TEST(DramDevice, RefreshDelaysCollidingAccess)
{
    DramParams params;
    params.refreshInterval = 1000 * tickNs;
    params.refreshLatency = 300 * tickNs;
    DramDevice dev(params);
    MemRequest req;
    req.addr = 0;
    // Arrive just after the first refresh window opened.
    const auto result = dev.access(req, params.refreshInterval + 1);
    EXPECT_GE(result.completeAt,
              params.refreshInterval + params.refreshLatency);
    EXPECT_GE(dev.refreshCount(), 1u);
}

TEST(DramDevice, CountsReadsAndWrites)
{
    DramDevice dev;
    MemRequest read, write;
    read.op = MemOp::Read;
    write.op = MemOp::Write;
    dev.access(read, 0);
    dev.access(write, 0);
    dev.access(write, 0);
    EXPECT_EQ(dev.readCount(), 1u);
    EXPECT_EQ(dev.writeCount(), 2u);
}

// --- PMEM DIMM (Fig. 2) -------------------------------------------

PmemDimmParams
smallPmem()
{
    PmemDimmParams params;
    params.sramBytes = 4 * 1024;
    params.dramBytes = 64 * 1024;
    return params;
}

TEST(PmemDimm, FirstReadMissesToMedia)
{
    PmemDimm dimm(smallPmem());
    MemRequest req;
    req.op = MemOp::Read;
    req.addr = 0;
    const auto result = dimm.access(req, 0);
    EXPECT_EQ(dimm.mediaReads(), 1u);
    // Full path: firmware + SRAM + DRAM lookups + media read.
    const auto &p = dimm.params();
    EXPECT_GE(result.completeAt,
              p.firmwareLatency + p.sramLatency + p.dramLatency
                  + p.media.readLatency);
}

TEST(PmemDimm, SecondReadHitsInternally)
{
    PmemDimm dimm(smallPmem());
    MemRequest req;
    req.op = MemOp::Read;
    req.addr = 0;
    const auto first = dimm.access(req, 0);
    const auto second = dimm.access(req, first.completeAt);
    EXPECT_TRUE(second.internalCacheHit);
    EXPECT_LT(second.completeAt - first.completeAt,
              first.completeAt);
    EXPECT_EQ(dimm.internalReadHits(), 1u);
}

TEST(PmemDimm, WritesAreBufferedAndFast)
{
    PmemDimm dimm(smallPmem());
    MemRequest req;
    req.op = MemOp::Write;
    req.addr = 4096;
    const auto result = dimm.access(req, 0);
    // Accepted at firmware + LSQ cost, far below a bare PRAM write.
    EXPECT_LE(result.completeAt,
              dimm.params().firmwareLatency
                  + dimm.params().lsqInsertLatency + 1);
    EXPECT_LT(result.completeAt, dimm.params().media.writeLatency);
}

TEST(PmemDimm, WriteCombiningMergesSameMediaBlock)
{
    PmemDimm dimm(smallPmem());
    MemRequest a, b;
    a.op = b.op = MemOp::Write;
    a.addr = 0;
    b.addr = 64;  // same 256 B media block
    dimm.access(a, 0);
    dimm.access(b, 10);
    EXPECT_EQ(dimm.combinedWrites(), 1u);
}

TEST(PmemDimm, LsqForwardsReadsOfPendingWrites)
{
    PmemDimm dimm(smallPmem());
    MemRequest write, read;
    write.op = MemOp::Write;
    write.addr = 512;
    read.op = MemOp::Read;
    read.addr = 512;
    dimm.access(write, 0);
    const auto result = dimm.access(read, 5);
    EXPECT_TRUE(result.internalCacheHit);
    EXPECT_EQ(dimm.mediaReads(), 0u);
}

TEST(PmemDimm, RandomReadsSlowerAndMoreVariableThanBarePram)
{
    // The Fig. 2b property: DIMM-level random reads pay the
    // multi-buffer lookup and are non-deterministic; bare PRAM reads
    // are flat.
    PmemDimm dimm;  // default: 256 KB SRAM, 32 MB DRAM buffer
    PramDevice bare;
    Rng rng(5);
    stats::Summary dimm_lat, bare_lat;
    // Mixed locality: half the reads in a buffer-resident hot set,
    // half streaming over a footprint far beyond the buffers. The
    // up-to-date line may sit in SRAM, DRAM, or media — the source
    // of the paper's non-determinism.
    const std::uint64_t hot = std::uint64_t(8) << 20;
    const std::uint64_t footprint = std::uint64_t(1) << 30;

    Tick t_dimm = 0, t_bare = 0;
    for (int i = 0; i < 4000; ++i) {
        MemRequest req;
        req.op = MemOp::Read;
        req.addr = (rng.chance(0.5) ? rng.below(hot)
                                    : rng.below(footprint))
            & ~std::uint64_t(63);
        const auto rd = dimm.access(req, t_dimm);
        dimm_lat.add(static_cast<double>(rd.completeAt - t_dimm));
        t_dimm = rd.completeAt;

        const auto rb = bare.read(t_bare);
        bare_lat.add(static_cast<double>(rb.completeAt - t_bare));
        t_bare = rb.completeAt;
    }

    EXPECT_GT(dimm_lat.mean(), 2.0 * bare_lat.mean());
    EXPECT_GT(dimm_lat.cv(), 10.0 * std::max(bare_lat.cv(), 0.01));
}

TEST(PmemDimm, SustainedRandomWritesBackpressure)
{
    PmemDimmParams params = smallPmem();
    params.lsqEntries = 4;
    PmemDimm dimm(params);
    Rng rng(6);
    Tick t = 0;
    Tick max_latency = 0;
    for (int i = 0; i < 500; ++i) {
        MemRequest req;
        req.op = MemOp::Write;
        // Distinct 4 KB regions: every write eventually reaches media.
        req.addr = (std::uint64_t(i) * 4096 * 7)
            % (std::uint64_t(1) << 28);
        const auto result = dimm.access(req, t);
        max_latency = std::max(max_latency, result.completeAt - t);
        t = result.completeAt;
    }
    // Backpressure must show up: some writes wait on LSQ drains.
    EXPECT_GT(max_latency, dimm.params().firmwareLatency);
    EXPECT_GT(dimm.mediaWrites(), 0u);
}

} // namespace
