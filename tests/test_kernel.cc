/**
 * @file
 * Tests for the PecOS kernel substrate (processes, devices, kernel).
 */

#include <gtest/gtest.h>

#include "kernel/kernel.hh"

#include "mem/backing_store.hh"
#include "pecos/sng.hh"
#include "psm/psm.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::kernel;

TEST(Process, FootprintSumsVmAreas)
{
    Process proc(5, "test", false);
    proc.vmAreas().push_back({VmArea::Kind::Code, 0, 1000});
    proc.vmAreas().push_back({VmArea::Kind::Heap, 0, 2000});
    proc.vmAreas().push_back({VmArea::Kind::Stack, 0, 500});
    EXPECT_EQ(proc.footprintBytes(), 3500u);
    EXPECT_EQ(proc.stackHeapBytes(), 2500u);
}

TEST(Process, RegisterFileEquality)
{
    Rng rng(1);
    RegisterFile a;
    a.randomize(rng);
    RegisterFile b = a;
    EXPECT_EQ(a, b);
    b.pc ^= 1;
    EXPECT_FALSE(a == b);
}

TEST(DeviceManager, DefaultPopulationSize)
{
    const auto mgr = DeviceManager::makeDefault(300);
    EXPECT_EQ(mgr.count(), 300u);
    EXPECT_GT(mgr.totalContextBytes(), 0u);
    EXPECT_GT(mgr.totalMmioBytes(), 0u);
}

TEST(DeviceManager, WorstCaseIsSevenThirty)
{
    // Fig. 22: the maximum dpm_list population.
    EXPECT_EQ(DeviceManager::makeWorstCase().count(), 730u);
}

TEST(DeviceManager, CostsAreJitteredButBounded)
{
    const auto mgr = DeviceManager::makeDefault(200);
    for (const auto &dev : mgr.list()) {
        EXPECT_LE(dev->costs().totalSuspend(), 60 * tickUs);
        EXPECT_LE(dev->costs().totalResume(), 60 * tickUs);
    }
}

TEST(DeviceManager, SuspendTracking)
{
    auto mgr = DeviceManager::makeDefault(10);
    EXPECT_FALSE(mgr.allSuspended());
    for (const auto &dev : mgr.list())
        dev->setSuspended(true);
    EXPECT_TRUE(mgr.allSuspended());
}

TEST(Kernel, PopulationMatchesParams)
{
    KernelParams params;
    params.userProcesses = 72;
    params.kernelThreads = 48;
    Kernel kern(params);
    // init + 48 + 72 = 121 (the paper's ~120-process busy system).
    EXPECT_EQ(kern.processCount(), 121u);
}

TEST(Kernel, BusySystemHasWorkOnEveryCore)
{
    KernelParams params;
    params.busy = true;
    Kernel kern(params);
    for (std::uint32_t c = 0; c < kern.cores(); ++c)
        EXPECT_FALSE(kern.runQueue(c).empty());
    EXPECT_GT(kern.runnableCount(), kern.cores());
}

TEST(Kernel, IdleSystemMostlySleeps)
{
    KernelParams busy_params, idle_params;
    idle_params.busy = false;
    Kernel busy(busy_params), idle(idle_params);
    EXPECT_GT(idle.sleepingProcesses().size(),
              busy.sleepingProcesses().size());
    EXPECT_LT(idle.runnableCount(), busy.runnableCount());
}

TEST(Kernel, SystemImageIsGigabytesScale)
{
    Kernel kern;
    // SysPC's payload: all footprints + kernel, order 1-4 GB.
    EXPECT_GT(kern.systemImageBytes(), std::uint64_t(1) << 30);
    EXPECT_LT(kern.systemImageBytes(), std::uint64_t(8) << 30);
}

TEST(Kernel, SnapshotDetectsChanges)
{
    Kernel kern;
    const SystemSnapshot before = kern.snapshot();
    EXPECT_EQ(before, kern.snapshot());
    Rng rng(3);
    kern.scramble(rng);
    EXPECT_FALSE(before == kern.snapshot());
}

TEST(Kernel, ScrambleIsDeterministic)
{
    Kernel a, b;
    Rng ra(5), rb(5);
    a.scramble(ra);
    b.scramble(rb);
    EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(Kernel, PersistentFlagToggles)
{
    Kernel kern;
    EXPECT_FALSE(kern.persistentFlag());
    kern.setPersistentFlag(true);
    EXPECT_TRUE(kern.persistentFlag());
}

TEST(Kernel, KernelThreadsHaveNoUserSpace)
{
    Kernel kern;
    for (const auto &proc : kern.processes()) {
        if (proc->isKernelThread()) {
            EXPECT_LE(proc->footprintBytes(), 16u * 1024);
        }
    }
}

} // namespace

namespace
{

TEST(KernelLifecycle, SpawnAssignsFreshPidAndQueues)
{
    Kernel kern;
    const std::size_t before = kern.processCount();
    const std::size_t queued = kern.runnableCount();
    auto &proc = kern.spawnProcess("newtenant", false,
                                   TaskState::Runnable);
    EXPECT_EQ(kern.processCount(), before + 1);
    EXPECT_EQ(kern.runnableCount(), queued + 1);
    EXPECT_GT(proc.pid(), 1u);
    EXPECT_EQ(kern.findProcess(proc.pid()), &proc);
    EXPECT_GT(proc.footprintBytes(), 0u);
}

TEST(KernelLifecycle, SpawnSleepingStaysOffQueues)
{
    Kernel kern;
    const std::size_t queued = kern.runnableCount();
    kern.spawnProcess("sleeper", false, TaskState::Sleeping);
    EXPECT_EQ(kern.runnableCount(), queued);
}

TEST(KernelLifecycle, SpawnBalancesAcrossCores)
{
    KernelParams params;
    params.userProcesses = 0;
    params.kernelThreads = 0;
    Kernel kern(params);
    for (int i = 0; i < 16; ++i)
        kern.spawnProcess("w" + std::to_string(i), false,
                          TaskState::Runnable);
    for (std::uint32_t c = 0; c < kern.cores(); ++c)
        EXPECT_EQ(kern.runQueue(c).size(), 2u);
}

TEST(KernelLifecycle, ExitRemovesAndDequeues)
{
    Kernel kern;
    auto &proc = kern.spawnProcess("ephemeral", false,
                                   TaskState::Runnable);
    const std::uint32_t pid = proc.pid();
    const std::size_t queued = kern.runnableCount();
    EXPECT_TRUE(kern.exitProcess(pid));
    EXPECT_EQ(kern.runnableCount(), queued - 1);
    EXPECT_EQ(kern.findProcess(pid), nullptr);
    EXPECT_FALSE(kern.exitProcess(pid));  // already gone
}

TEST(KernelLifecycle, InitCannotExit)
{
    Kernel kern;
    EXPECT_THROW(kern.exitProcess(1), FatalError);
}

// --- DCB context round-trip ----------------------------------------

namespace
{

/**
 * A context provider that records when Auto-Stop and Go touch it, so
 * dpm ordering and image fidelity are both observable.
 */
struct RecordingContext : DeviceContext
{
    RecordingContext(std::vector<std::string> *journal_in,
                     std::string tag_in,
                     std::vector<std::uint8_t> bytes)
        : journal(journal_in), tag(std::move(tag_in)),
          state(std::move(bytes))
    {
    }

    void
    saveContext(std::vector<std::uint8_t> &out) override
    {
        journal->push_back("save:" + tag);
        out.insert(out.end(), state.begin(), state.end());
    }

    void
    restoreContext(const std::uint8_t *data, std::size_t len) override
    {
        journal->push_back("restore:" + tag);
        state.assign(data, data + len);
    }

    std::vector<std::string> *journal;
    std::string tag;
    std::vector<std::uint8_t> state;
};

} // namespace

TEST(DeviceContextDcb, NetworkRingImageRoundTripsThroughStopAndGo)
{
    Kernel kern;
    std::vector<std::string> journal;

    // Two Network-class drivers with real (distinct) ring images,
    // registered in dpm order: eth0 first, eth1 second.
    std::vector<std::uint8_t> ring0(96), ring1(64);
    for (std::size_t i = 0; i < ring0.size(); ++i)
        ring0[i] = static_cast<std::uint8_t>(0xa0 + i);
    for (std::size_t i = 0; i < ring1.size(); ++i)
        ring1[i] = static_cast<std::uint8_t>(0x30 + i * 3);
    RecordingContext ctx0(&journal, "eth0", ring0);
    RecordingContext ctx1(&journal, "eth1", ring1);

    DpmCosts costs{tickUs, tickUs, tickUs, tickUs, tickUs, tickUs};
    Device &dev0 = kern.devices().add(std::make_unique<Device>(
        "eth0", DeviceClass::Network, costs, ring0.size(), 4096));
    Device &dev1 = kern.devices().add(std::make_unique<Device>(
        "eth1", DeviceClass::Network, costs, ring1.size(), 4096));
    dev0.bindContext(&ctx0, ring0.size());
    dev1.bindContext(&ctx1, ring1.size());

    psm::Psm psm;
    mem::BackingStore pmem;
    pecos::Sng sng(kern, psm, pmem, {});

    const auto stop = sng.stop(0);
    ASSERT_FALSE(stop.commitFailed);
    EXPECT_EQ(stop.contextImagesSaved, 2u);
    EXPECT_TRUE(dev0.suspended());
    EXPECT_TRUE(dev1.suspended());

    // The DRAM copies die with the rails; only the DCB images in
    // OC-PMEM may come back.
    ctx0.state.assign(ring0.size(), 0xff);
    ctx1.state.assign(ring1.size(), 0xff);

    const auto go = sng.resume(stop.offlineDone + tickMs);
    EXPECT_FALSE(go.coldBoot);
    EXPECT_EQ(go.contextImagesRestored, 2u);
    EXPECT_FALSE(dev0.suspended());
    EXPECT_FALSE(dev1.suspended());

    // Byte-exact resurrection of both ring images.
    EXPECT_EQ(ctx0.state, ring0);
    EXPECT_EQ(ctx1.state, ring1);

    // dpm ordering: suspend in registration order, resume inverse.
    const std::vector<std::string> expected{
        "save:eth0", "save:eth1", "restore:eth1", "restore:eth0"};
    EXPECT_EQ(journal, expected);
}

TEST(KernelLifecycle, SngHandlesDynamicPopulation)
{
    // Spawn and exit around the default population, then verify a
    // full power cycle still round-trips every surviving PCB.
    Kernel kern;
    kern.spawnProcess("burst/0", false, TaskState::Runnable);
    auto &doomed =
        kern.spawnProcess("burst/1", false, TaskState::Sleeping);
    kern.spawnProcess("burst/2", true, TaskState::Runnable);
    kern.exitProcess(doomed.pid());

    psm::Psm psm;
    mem::BackingStore pmem;
    pecos::Sng sng(kern, psm, pmem, {});
    Rng rng(31);
    kern.scramble(rng);
    const auto before = kern.snapshot();
    const auto stop = sng.stop(0);
    EXPECT_EQ(stop.tasksParked, kern.processCount());
    const auto go = sng.resume(stop.offlineDone + tickMs);
    EXPECT_FALSE(go.coldBoot);
    const auto after = kern.snapshot();
    ASSERT_EQ(before.entries.size(), after.entries.size());
    for (std::size_t i = 0; i < before.entries.size(); ++i)
        EXPECT_EQ(before.entries[i].regs, after.entries[i].regs);
}

} // namespace
