/**
 * @file
 * Tests for PSM fault handling: XCC repair, symbol-ECC fallback,
 * MCE containment policies, and wear-leveler re-seeding.
 */

#include <gtest/gtest.h>

#include "psm/psm.hh"
#include "sim/logging.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::psm;
using mem::MemOp;
using mem::MemRequest;

PsmParams
quietParams()
{
    PsmParams p;
    p.wearLeveling = false;
    return p;
}

MemRequest
readAt(mem::Addr addr)
{
    MemRequest req;
    req.op = MemOp::Read;
    req.addr = addr;
    return req;
}

/** Find an address routed to unit (0, 0) half-deterministically. */
mem::Addr
addrOnUnitZero(Psm &psm)
{
    // With wear leveling off the routing is a pure page interleave:
    // page 0 lands on unit 0.
    (void)psm;
    return 0;
}

TEST(PsmReliability, SingleHalfFaultIsCorrectedByXcc)
{
    Psm psm(quietParams());
    psm.injectFault(0, 0, 0);
    EXPECT_EQ(psm.faultCount(), 1u);

    const auto result = psm.access(readAt(addrOnUnitZero(psm)), 0);
    EXPECT_TRUE(result.corrected);
    EXPECT_FALSE(result.containment);
    EXPECT_EQ(psm.stats().correctedReads, 1u);
    EXPECT_EQ(psm.stats().mceCount, 0u);
    // One read latency + one XOR cycle, not a stall.
    EXPECT_LE(result.completeAt,
              psm.params().busLatency
                  + psm.params().dimm.device.readLatency
                  + psm.params().xorLatency);
}

TEST(PsmReliability, BothHalvesDeadRaiseContainment)
{
    Psm psm(quietParams());
    psm.injectFault(0, 0, 0);
    psm.injectFault(0, 0, 1);

    const auto result = psm.access(readAt(addrOnUnitZero(psm)), 0);
    EXPECT_TRUE(result.containment);
    EXPECT_FALSE(result.corrected);
    EXPECT_EQ(psm.stats().mceCount, 1u);
}

TEST(PsmReliability, SymbolEccFallbackRecoversDoubleFault)
{
    PsmParams params = quietParams();
    params.symbolEccFallback = true;
    Psm psm(params);
    psm.injectFault(0, 0, 0);
    psm.injectFault(0, 0, 1);

    const auto result = psm.access(readAt(addrOnUnitZero(psm)), 0);
    EXPECT_TRUE(result.corrected);
    EXPECT_FALSE(result.containment);
    EXPECT_EQ(psm.stats().symbolCorrections, 1u);
    EXPECT_EQ(psm.stats().mceCount, 0u);
    // Pays the symbol decode latency on top of the media read.
    EXPECT_GE(result.completeAt,
              params.dimm.device.readLatency
                  + params.symbolEccLatency);
}

TEST(PsmReliability, FaultsOnOtherUnitsDoNotInterfere)
{
    Psm psm(quietParams());
    psm.injectFault(1, 2, 0);
    const auto result = psm.access(readAt(0), 0);  // unit 0
    EXPECT_FALSE(result.corrected);
    EXPECT_FALSE(result.containment);
}

TEST(PsmReliability, RowBufferForwardsEvenOnFaultyUnit)
{
    // Freshly-written data lives in the (SRAM) row buffer; reads of
    // it never touch the dead media.
    Psm psm(quietParams());
    psm.injectFault(0, 0, 0);
    psm.injectFault(0, 0, 1);
    MemRequest write;
    write.op = MemOp::Write;
    write.addr = 0;
    psm.access(write, 0);
    const auto result = psm.access(readAt(0), 100);
    EXPECT_TRUE(result.rowBufferHit);
    EXPECT_FALSE(result.containment);
}

TEST(PsmReliability, ResetColdBootPolicyWipes)
{
    PsmParams params = quietParams();
    params.mcePolicy = McePolicy::ResetColdBoot;
    Psm psm(params);
    psm.injectFault(0, 0, 0);
    psm.injectFault(0, 0, 1);
    psm.access(readAt(0), 0);
    EXPECT_TRUE(psm.handleContainment());
    EXPECT_EQ(psm.stats().resets, 1u);
    EXPECT_EQ(psm.stats().mceCount, 1u);  // history preserved
    // The media is still dead after a reset (no device replaced).
    EXPECT_EQ(psm.faultCount(), 2u);
}

TEST(PsmReliability, ContainPolicyDoesNotReset)
{
    PsmParams params = quietParams();
    params.mcePolicy = McePolicy::Contain;
    Psm psm(params);
    psm.injectFault(0, 0, 0);
    psm.injectFault(0, 0, 1);
    psm.access(readAt(0), 0);
    EXPECT_FALSE(psm.handleContainment());
    EXPECT_EQ(psm.stats().resets, 0u);
}

TEST(PsmReliability, ClearFaultsHeals)
{
    Psm psm(quietParams());
    psm.injectFault(0, 0, 0);
    psm.clearFaults();
    EXPECT_EQ(psm.faultCount(), 0u);
    const auto result = psm.access(readAt(0), 0);
    EXPECT_FALSE(result.corrected);
}

TEST(PsmReliability, InjectFaultValidatesRange)
{
    Psm psm(quietParams());
    EXPECT_THROW(psm.injectFault(99, 0, 0), FatalError);
    EXPECT_THROW(psm.injectFault(0, 99, 0), FatalError);
    EXPECT_THROW(psm.injectFault(0, 0, 2), FatalError);
}

TEST(PsmReliability, ReseedChangesMapping)
{
    PsmParams params;  // wear leveling ON
    Psm psm(params);

    // Record where a line's traffic lands before the reseed; flush
    // so the buffered writes actually reach a device.
    MemRequest write;
    write.op = MemOp::Write;
    write.addr = 4096;
    Tick t = 0;
    for (int i = 0; i < 64; ++i)
        t = psm.access(write, t).completeAt;
    t = psm.flush(t);
    std::vector<std::uint64_t> before;
    for (std::uint32_t d = 0; d < params.dimms; ++d)
        for (std::uint32_t g = 0; g < psm.dimm(d).groupCount(); ++g)
            before.push_back(psm.dimm(d).group(g).writeCount());

    Tick done = psm.reseedWearLeveler(t, 0xfeedULL);
    EXPECT_GT(done, t);  // migration costs time

    for (int i = 0; i < 64; ++i)
        done = psm.access(write, done).completeAt;
    done = psm.flush(done);
    std::vector<std::uint64_t> after;
    for (std::uint32_t d = 0; d < params.dimms; ++d)
        for (std::uint32_t g = 0; g < psm.dimm(d).groupCount(); ++g)
            after.push_back(psm.dimm(d).group(g).writeCount());

    // The hammered line should now hit a different unit: the unit
    // that grew before the reseed is not the one growing after.
    std::size_t before_hot = 0, after_hot = 0;
    std::uint64_t before_max = 0, after_max = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
        if (before[i] > before_max) {
            before_max = before[i];
            before_hot = i;
        }
        const std::uint64_t delta = after[i] - before[i];
        if (delta > after_max) {
            after_max = delta;
            after_hot = i;
        }
    }
    EXPECT_NE(before_hot, after_hot);
}

TEST(PsmReliability, ReseedMigrationScalesWithCapacity)
{
    PsmParams small_params, large_params;
    small_params.dimm.device.capacityBytes = 64 << 20;
    large_params.dimm.device.capacityBytes = 512 << 20;
    Psm small(small_params), large(large_params);
    const Tick t_small = small.reseedWearLeveler(0, 1);
    const Tick t_large = large.reseedWearLeveler(0, 1);
    EXPECT_GT(t_large, 4 * t_small);
}

} // namespace
