/**
 * @file
 * Unit, integration, and property tests for Stop-and-Go.
 */

#include <gtest/gtest.h>

#include "kernel/kernel.hh"
#include "mem/backing_store.hh"
#include "pecos/scaling.hh"
#include "pecos/sng.hh"
#include "power/psu.hh"
#include "psm/psm.hh"
#include "sim/rng.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::pecos;
using kernel::Kernel;
using kernel::KernelParams;
using kernel::TaskState;

struct SngRig
{
    explicit SngRig(bool busy = true, std::uint32_t cores = 8,
                    std::uint64_t seed = 11)
    {
        KernelParams params;
        params.busy = busy;
        params.cores = cores;
        params.seed = seed;
        kern = std::make_unique<Kernel>(params);
        psm = std::make_unique<psm::Psm>();
        sng = std::make_unique<Sng>(*kern, *psm, pmem,
                                    std::vector<cache::L1Cache *>{});
    }

    std::unique_ptr<Kernel> kern;
    std::unique_ptr<psm::Psm> psm;
    mem::BackingStore pmem;
    std::unique_ptr<Sng> sng;
};

TEST(Sng, StopParksEveryTask)
{
    SngRig rig;
    const auto report = rig.sng->stop(0);
    EXPECT_EQ(report.tasksParked, rig.kern->processCount());
    EXPECT_EQ(rig.kern->runnableCount(), 0u);
    for (const auto &proc : rig.kern->processes())
        EXPECT_EQ(proc->state(), TaskState::Uninterruptible);
}

TEST(Sng, StopSuspendsEveryDevice)
{
    SngRig rig;
    const auto report = rig.sng->stop(0);
    EXPECT_EQ(report.devicesSuspended, rig.kern->devices().count());
    EXPECT_TRUE(rig.kern->devices().allSuspended());
}

TEST(Sng, StopCommitsTheEpCut)
{
    SngRig rig;
    EXPECT_FALSE(rig.sng->hasCommit());
    rig.sng->stop(0);
    EXPECT_TRUE(rig.sng->hasCommit());
    // The persistent flag is cleared at the final stage.
    EXPECT_FALSE(rig.kern->persistentFlag());
}

TEST(Sng, BusyStopFitsAtxSpecHoldup)
{
    // Fig. 8: even fully utilized, Stop finishes inside the 16 ms
    // the ATX specification documents.
    SngRig rig(true);
    const auto report = rig.sng->stop(0);
    EXPECT_LE(report.totalTicks(),
              power::PsuModel::atx().spec().specHoldup);
    EXPECT_GE(report.totalTicks(), 6 * tickMs);  // not trivially fast
}

TEST(Sng, IdleStopIsFasterThanBusy)
{
    SngRig busy(true), idle(false);
    const auto busy_report = busy.sng->stop(0);
    const auto idle_report = idle.sng->stop(0);
    EXPECT_LT(idle_report.totalTicks(), busy_report.totalTicks());
}

TEST(Sng, DecompositionMatchesPaperShape)
{
    // Fig. 8b: process stop ~12%, device stop ~38%, offline ~50%.
    SngRig rig(true);
    const auto report = rig.sng->stop(0);
    const double total = static_cast<double>(report.totalTicks());
    const double process =
        static_cast<double>(report.processStopTicks()) / total;
    const double device =
        static_cast<double>(report.deviceStopTicks()) / total;
    const double offline =
        static_cast<double>(report.offlineTicks()) / total;
    EXPECT_NEAR(process, 0.12, 0.08);
    EXPECT_NEAR(device, 0.38, 0.12);
    EXPECT_NEAR(offline, 0.50, 0.12);
}

TEST(Sng, GoWithoutCommitIsColdBoot)
{
    SngRig rig;
    const auto report = rig.sng->resume(0);
    EXPECT_TRUE(report.coldBoot);
    EXPECT_EQ(report.devicesRevived, 0u);
}

TEST(Sng, GoRevivesDevicesAndTasks)
{
    SngRig rig;
    rig.sng->stop(0);
    const auto go = rig.sng->resume(100 * tickMs);
    EXPECT_FALSE(go.coldBoot);
    EXPECT_EQ(go.devicesRevived, rig.kern->devices().count());
    EXPECT_EQ(go.tasksScheduled, rig.kern->processCount());
    EXPECT_FALSE(rig.kern->devices().list()[0]->suspended());
    EXPECT_EQ(rig.kern->runnableCount(), rig.kern->processCount());
}

TEST(Sng, GoClearsCommit)
{
    SngRig rig;
    rig.sng->stop(0);
    rig.sng->resume(100 * tickMs);
    EXPECT_FALSE(rig.sng->hasCommit());
    // A second resume without a new Stop is a cold boot.
    EXPECT_TRUE(rig.sng->resume(200 * tickMs).coldBoot);
}

TEST(Sng, ArchitecturalStateSurvivesPowerCycle)
{
    SngRig rig;
    Rng rng(77);
    rig.kern->scramble(rng);
    const auto before = rig.kern->snapshot();

    rig.sng->stop(0);

    // Power loss: volatile copies rot; only OC-PMEM survives.
    Rng corrupt(1234);
    for (std::size_t i = 0; i < rig.kern->processCount(); ++i)
        rig.kern->process(i).regs().randomize(corrupt);

    rig.sng->resume(200 * tickMs);
    const auto after = rig.kern->snapshot();
    ASSERT_EQ(before.entries.size(), after.entries.size());
    for (std::size_t i = 0; i < before.entries.size(); ++i) {
        EXPECT_EQ(before.entries[i].pid, after.entries[i].pid);
        EXPECT_EQ(before.entries[i].regs, after.entries[i].regs)
            << "pid " << before.entries[i].pid;
    }
    EXPECT_EQ(before.deviceCookies, after.deviceCookies);
}

TEST(Sng, WearLevelerStateSurvivesPowerCycle)
{
    SngRig rig;
    // Churn the wear leveler, then power-cycle.
    mem::MemRequest req;
    req.op = mem::MemOp::Write;
    Tick t = 0;
    for (int i = 0; i < 1000; ++i) {
        req.addr = std::uint64_t(i) * 64;
        t = rig.psm->access(req, t).completeAt;
    }
    // SnG's own control-block writes advance the wear leveler, so
    // the authoritative state is the one captured at the EP-cut.
    rig.sng->stop(t);
    const auto before = rig.psm->saveWearState();
    EXPECT_GT(before.totalMoves, 0u);
    // Fresh PSM object: volatile registers gone.
    rig.psm = std::make_unique<psm::Psm>();
    rig.sng = std::make_unique<Sng>(*rig.kern, *rig.psm, rig.pmem,
                                    std::vector<cache::L1Cache *>{});
    rig.sng->resume(t + 100 * tickMs);
    const auto after = rig.psm->saveWearState();
    EXPECT_EQ(before.start, after.start);
    EXPECT_EQ(before.gap, after.gap);
    EXPECT_EQ(before.totalMoves, after.totalMoves);
}

TEST(Sng, RepeatedPowerCyclesStayConsistent)
{
    SngRig rig;
    Rng rng(5);
    Tick t = 0;
    for (int cycle = 0; cycle < 5; ++cycle) {
        rig.kern->scramble(rng);
        const auto before = rig.kern->snapshot();
        const auto stop = rig.sng->stop(t);
        const auto go = rig.sng->resume(stop.offlineDone + tickMs);
        EXPECT_FALSE(go.coldBoot);
        const auto after = rig.kern->snapshot();
        for (std::size_t i = 0; i < before.entries.size(); ++i)
            ASSERT_EQ(before.entries[i].regs, after.entries[i].regs);
        t = go.done + tickMs;
    }
}

TEST(Sng, MoreDirtyLinesLengthenOffline)
{
    SngRig small, large;
    small.sng->setFallbackDirtyLines(100);
    large.sng->setFallbackDirtyLines(100'000);
    EXPECT_GT(large.sng->stop(0).offlineTicks(),
              small.sng->stop(0).offlineTicks());
}

/** Property sweep: random seeds and core counts always round-trip. */
struct SngCase
{
    std::uint32_t cores;
    bool busy;
    std::uint64_t seed;
};

class SngProperty : public ::testing::TestWithParam<SngCase>
{
};

TEST_P(SngProperty, PowerCycleRoundTrip)
{
    const SngCase c = GetParam();
    SngRig rig(c.busy, c.cores, c.seed);
    Rng rng(c.seed * 13 + 1);
    rig.kern->scramble(rng);
    const auto before = rig.kern->snapshot();

    const auto stop = rig.sng->stop(0);
    EXPECT_EQ(stop.tasksParked, rig.kern->processCount());

    Rng corrupt(c.seed * 31 + 7);
    for (std::size_t i = 0; i < rig.kern->processCount(); ++i)
        rig.kern->process(i).regs().randomize(corrupt);

    const auto go = rig.sng->resume(stop.offlineDone + tickMs);
    EXPECT_FALSE(go.coldBoot);
    const auto after = rig.kern->snapshot();
    for (std::size_t i = 0; i < before.entries.size(); ++i)
        ASSERT_EQ(before.entries[i].regs, after.entries[i].regs);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SngProperty,
    ::testing::Values(SngCase{1, true, 1}, SngCase{2, false, 2},
                      SngCase{4, true, 3}, SngCase{8, false, 4},
                      SngCase{16, true, 5}, SngCase{32, true, 6},
                      SngCase{8, true, 7}, SngCase{64, true, 8}));

TEST(SngScaling, WorstCaseGrowsWithCoresAndCache)
{
    const auto small = simulateWorstCaseStop(8, 16 * 1024 * 8);
    const auto more_cores = simulateWorstCaseStop(32, 16 * 1024 * 32);
    const auto more_cache =
        simulateWorstCaseStop(8, std::uint64_t(40) << 20);
    EXPECT_GT(more_cores.report.totalTicks(),
              small.report.totalTicks());
    EXPECT_GT(more_cache.report.totalTicks(),
              small.report.totalTicks());
}

TEST(SngScaling, PaperAnchorsHold)
{
    // Fig. 22: 64 cores + 40 MB fit the server budget (55 ms) but
    // not ATX (16 ms); 32 cores + 16 KB caches fit ATX.
    const Tick atx = power::PsuModel::atx().spec().specHoldup;
    const Tick server = 55 * tickMs;

    const auto big =
        simulateWorstCaseStop(64, std::uint64_t(40) << 20);
    EXPECT_TRUE(big.withinBudget(server));
    EXPECT_FALSE(big.withinBudget(atx));

    const auto mid = simulateWorstCaseStop(32, 16 * 1024 * 32 * 2);
    EXPECT_TRUE(mid.withinBudget(server));
}

} // namespace

namespace
{

TEST(Sng, MissedHoldupLeavesNoCommit)
{
    SngRig rig;
    const auto report = rig.sng->stop(0, /*holdup=*/1 * tickMs);
    EXPECT_TRUE(report.commitFailed);
    EXPECT_FALSE(rig.sng->hasCommit());
    // Recovery after the botched Stop is a cold boot.
    EXPECT_TRUE(rig.sng->resume(report.offlineDone + tickMs)
                    .coldBoot);
}

TEST(Sng, GenerousHoldupCommits)
{
    SngRig rig;
    const auto report = rig.sng->stop(0, 55 * tickMs);
    EXPECT_FALSE(report.commitFailed);
    EXPECT_TRUE(rig.sng->hasCommit());
}

TEST(Sng, AtxSpecHoldupIsSufficientForPrototype)
{
    // The paper's engineering target: the 8-core busy prototype
    // commits within the documented 16 ms even though the measured
    // ATX gives 22 ms.
    SngRig rig(true);
    const auto report =
        rig.sng->stop(0, power::PsuModel::atx().spec().specHoldup);
    EXPECT_FALSE(report.commitFailed);
    EXPECT_TRUE(rig.sng->hasCommit());
}

} // namespace
