/**
 * @file
 * Unit tests for the L1 cache timing model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/l1_cache.hh"
#include "mem/memory_port.hh"

namespace
{

using namespace lightpc;
using namespace lightpc::cache;
using mem::AccessResult;
using mem::MemOp;
using mem::MemRequest;

/** A scripted memory below the cache: fixed latency, logs requests. */
class StubMemory : public mem::MemoryPort
{
  public:
    explicit StubMemory(Tick latency) : latency(latency) {}

    AccessResult
    access(const MemRequest &req, Tick when) override
    {
        requests.push_back(req);
        AccessResult result;
        result.completeAt = when + latency;
        result.mediaFreeAt = result.completeAt;
        return result;
    }

    Tick latency;
    std::vector<MemRequest> requests;
};

L1Params
tinyCache()
{
    L1Params p;
    p.capacityBytes = 512;  // 8 lines
    p.ways = 2;
    return p;
}

TEST(L1Cache, LoadMissFillsThenHits)
{
    StubMemory mem(100 * tickNs);
    L1Cache cache(tinyCache(), mem);

    const auto miss = cache.load(0, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_GE(miss.completeAt, 100 * tickNs);
    ASSERT_EQ(mem.requests.size(), 1u);
    EXPECT_EQ(mem.requests[0].op, MemOp::Read);

    const auto hit = cache.load(32, miss.completeAt);  // same line
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.completeAt,
              miss.completeAt + cache.params().hitLatency);
    EXPECT_EQ(mem.requests.size(), 1u);
}

TEST(L1Cache, StoreMissWriteAllocates)
{
    StubMemory mem(100 * tickNs);
    L1Cache cache(tinyCache(), mem);
    const auto miss = cache.store(64, 0);
    EXPECT_FALSE(miss.hit);
    ASSERT_EQ(mem.requests.size(), 1u);
    EXPECT_EQ(mem.requests[0].op, MemOp::Read);  // allocate fill
    EXPECT_EQ(cache.dirtyLines(), 1u);
}

TEST(L1Cache, DirtyEvictionWritesBack)
{
    StubMemory mem(10 * tickNs);
    L1Cache cache(tinyCache(), mem);
    // 4 sets x 2 ways; addresses 0, 256, 512 collide in set 0 (line
    // 64B, 4 sets -> stride 256).
    cache.store(0, 0);
    cache.store(256, 1000);
    cache.store(512, 2000);  // evicts line 0 (dirty)
    bool saw_writeback = false;
    for (const auto &req : mem.requests)
        saw_writeback |= req.op == MemOp::Write && req.addr == 0;
    EXPECT_TRUE(saw_writeback);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(L1Cache, CleanEvictionDoesNotWriteBack)
{
    StubMemory mem(10 * tickNs);
    L1Cache cache(tinyCache(), mem);
    cache.load(0, 0);
    cache.load(256, 1000);
    cache.load(512, 2000);
    for (const auto &req : mem.requests)
        EXPECT_EQ(req.op, MemOp::Read);
}

TEST(L1Cache, WritebackBufferBackpressureStalls)
{
    L1Params params = tinyCache();
    params.writebackEntries = 1;
    StubMemory mem(1000 * tickNs);  // slow writes
    L1Cache cache(params, mem);
    cache.store(0, 0);
    cache.store(256, 0);
    cache.store(512, 0);   // writeback #1 fills the single slot
    cache.store(768, 0);   // writeback #2 must wait for #1
    EXPECT_GT(cache.stats().writebackStallTicks, 0u);
}

TEST(L1Cache, FlushAllWritesEveryDirtyLine)
{
    StubMemory mem(10 * tickNs);
    L1Cache cache(tinyCache(), mem);
    cache.store(0, 0);
    cache.store(64, 0);
    cache.load(128, 0);
    EXPECT_EQ(cache.dirtyLines(), 2u);

    mem.requests.clear();
    const Tick done = cache.flushAll(1000);
    EXPECT_EQ(mem.requests.size(), 2u);
    for (const auto &req : mem.requests)
        EXPECT_EQ(req.op, MemOp::Write);
    EXPECT_GT(done, 1000u);
    EXPECT_EQ(cache.dirtyLines(), 0u);
    // Contents stay resident (clean) after a flush.
    EXPECT_TRUE(cache.load(0, done).hit);
}

TEST(L1Cache, FlushAllOnCleanCacheIsFree)
{
    StubMemory mem(10 * tickNs);
    L1Cache cache(tinyCache(), mem);
    cache.load(0, 0);
    EXPECT_EQ(cache.flushAll(500), 500u);
}

TEST(L1Cache, InvalidateAllDropsContents)
{
    StubMemory mem(10 * tickNs);
    L1Cache cache(tinyCache(), mem);
    cache.store(0, 0);
    cache.invalidateAll();
    EXPECT_EQ(cache.validLines(), 0u);
    EXPECT_FALSE(cache.load(0, 100).hit);
}

TEST(L1Cache, HitRateStats)
{
    StubMemory mem(10 * tickNs);
    L1Cache cache(tinyCache(), mem);
    cache.load(0, 0);
    cache.load(0, 100);
    cache.load(0, 200);
    cache.load(64, 300);
    EXPECT_DOUBLE_EQ(cache.stats().loadHitRate(), 0.5);
}

} // namespace
