file(REMOVE_RECURSE
  "liblightpc.a"
)
