# Empty dependencies file for lightpc.
# This may be replaced when dependencies are built.
