
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/l1_cache.cc" "src/CMakeFiles/lightpc.dir/cache/l1_cache.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/cache/l1_cache.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/lightpc.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/cpu/core.cc.o.d"
  "/root/repo/src/kernel/device.cc" "src/CMakeFiles/lightpc.dir/kernel/device.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/kernel/device.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/lightpc.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/process.cc" "src/CMakeFiles/lightpc.dir/kernel/process.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/kernel/process.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/lightpc.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/dram_device.cc" "src/CMakeFiles/lightpc.dir/mem/dram_device.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/mem/dram_device.cc.o.d"
  "/root/repo/src/mem/pmem_dimm.cc" "src/CMakeFiles/lightpc.dir/mem/pmem_dimm.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/mem/pmem_dimm.cc.o.d"
  "/root/repo/src/mem/pram_device.cc" "src/CMakeFiles/lightpc.dir/mem/pram_device.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/mem/pram_device.cc.o.d"
  "/root/repo/src/mem/timed_mem.cc" "src/CMakeFiles/lightpc.dir/mem/timed_mem.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/mem/timed_mem.cc.o.d"
  "/root/repo/src/pecos/scaling.cc" "src/CMakeFiles/lightpc.dir/pecos/scaling.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/pecos/scaling.cc.o.d"
  "/root/repo/src/pecos/sng.cc" "src/CMakeFiles/lightpc.dir/pecos/sng.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/pecos/sng.cc.o.d"
  "/root/repo/src/persist/checkpoint.cc" "src/CMakeFiles/lightpc.dir/persist/checkpoint.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/persist/checkpoint.cc.o.d"
  "/root/repo/src/persist/object_pool.cc" "src/CMakeFiles/lightpc.dir/persist/object_pool.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/persist/object_pool.cc.o.d"
  "/root/repo/src/platform/pmem_modes.cc" "src/CMakeFiles/lightpc.dir/platform/pmem_modes.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/platform/pmem_modes.cc.o.d"
  "/root/repo/src/platform/system.cc" "src/CMakeFiles/lightpc.dir/platform/system.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/platform/system.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/CMakeFiles/lightpc.dir/power/power_model.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/power/power_model.cc.o.d"
  "/root/repo/src/psm/bare_nvdimm.cc" "src/CMakeFiles/lightpc.dir/psm/bare_nvdimm.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/psm/bare_nvdimm.cc.o.d"
  "/root/repo/src/psm/psm.cc" "src/CMakeFiles/lightpc.dir/psm/psm.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/psm/psm.cc.o.d"
  "/root/repo/src/psm/start_gap.cc" "src/CMakeFiles/lightpc.dir/psm/start_gap.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/psm/start_gap.cc.o.d"
  "/root/repo/src/psm/symbol_ecc.cc" "src/CMakeFiles/lightpc.dir/psm/symbol_ecc.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/psm/symbol_ecc.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/lightpc.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/sim/logging.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/lightpc.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/lightpc.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/stats/table.cc.o.d"
  "/root/repo/src/workload/spec.cc" "src/CMakeFiles/lightpc.dir/workload/spec.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/workload/spec.cc.o.d"
  "/root/repo/src/workload/stream_bench.cc" "src/CMakeFiles/lightpc.dir/workload/stream_bench.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/workload/stream_bench.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/lightpc.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/lightpc.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/lightpc.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
