file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_freq_stalls.dir/bench_fig14_freq_stalls.cc.o"
  "CMakeFiles/bench_fig14_freq_stalls.dir/bench_fig14_freq_stalls.cc.o.d"
  "bench_fig14_freq_stalls"
  "bench_fig14_freq_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_freq_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
