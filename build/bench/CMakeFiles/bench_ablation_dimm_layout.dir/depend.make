# Empty dependencies file for bench_ablation_dimm_layout.
# This may be replaced when dependencies are built.
