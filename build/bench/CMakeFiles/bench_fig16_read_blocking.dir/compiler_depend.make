# Empty compiler generated dependencies file for bench_fig16_read_blocking.
# This may be replaced when dependencies are built.
