file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_power_energy.dir/bench_fig18_power_energy.cc.o"
  "CMakeFiles/bench_fig18_power_energy.dir/bench_fig18_power_energy.cc.o.d"
  "bench_fig18_power_energy"
  "bench_fig18_power_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_power_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
