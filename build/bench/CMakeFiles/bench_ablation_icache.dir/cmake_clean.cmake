file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_icache.dir/bench_ablation_icache.cc.o"
  "CMakeFiles/bench_ablation_icache.dir/bench_ablation_icache.cc.o.d"
  "bench_ablation_icache"
  "bench_ablation_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
