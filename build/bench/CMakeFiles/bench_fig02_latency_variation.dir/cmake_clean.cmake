file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_latency_variation.dir/bench_fig02_latency_variation.cc.o"
  "CMakeFiles/bench_fig02_latency_variation.dir/bench_fig02_latency_variation.cc.o.d"
  "bench_fig02_latency_variation"
  "bench_fig02_latency_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_latency_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
