file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_flush_vs_holdup.dir/bench_fig20_flush_vs_holdup.cc.o"
  "CMakeFiles/bench_fig20_flush_vs_holdup.dir/bench_fig20_flush_vs_holdup.cc.o.d"
  "bench_fig20_flush_vs_holdup"
  "bench_fig20_flush_vs_holdup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_flush_vs_holdup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
