# Empty dependencies file for bench_fig20_flush_vs_holdup.
# This may be replaced when dependencies are built.
