file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_failure_storm.dir/bench_ablation_failure_storm.cc.o"
  "CMakeFiles/bench_ablation_failure_storm.dir/bench_ablation_failure_storm.cc.o.d"
  "bench_ablation_failure_storm"
  "bench_ablation_failure_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_failure_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
