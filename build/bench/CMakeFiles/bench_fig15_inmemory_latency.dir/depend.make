# Empty dependencies file for bench_fig15_inmemory_latency.
# This may be replaced when dependencies are built.
