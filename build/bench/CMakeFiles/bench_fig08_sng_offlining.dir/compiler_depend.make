# Empty compiler generated dependencies file for bench_fig08_sng_offlining.
# This may be replaced when dependencies are built.
