file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_sng_offlining.dir/bench_fig08_sng_offlining.cc.o"
  "CMakeFiles/bench_fig08_sng_offlining.dir/bench_fig08_sng_offlining.cc.o.d"
  "bench_fig08_sng_offlining"
  "bench_fig08_sng_offlining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_sng_offlining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
