file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_persistent_computing.dir/bench_fig19_persistent_computing.cc.o"
  "CMakeFiles/bench_fig19_persistent_computing.dir/bench_fig19_persistent_computing.cc.o.d"
  "bench_fig19_persistent_computing"
  "bench_fig19_persistent_computing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_persistent_computing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
