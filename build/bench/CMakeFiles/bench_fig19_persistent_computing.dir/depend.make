# Empty dependencies file for bench_fig19_persistent_computing.
# This may be replaced when dependencies are built.
