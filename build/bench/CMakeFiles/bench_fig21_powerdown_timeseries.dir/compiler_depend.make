# Empty compiler generated dependencies file for bench_fig21_powerdown_timeseries.
# This may be replaced when dependencies are built.
