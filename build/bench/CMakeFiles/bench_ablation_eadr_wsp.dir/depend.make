# Empty dependencies file for bench_ablation_eadr_wsp.
# This may be replaced when dependencies are built.
