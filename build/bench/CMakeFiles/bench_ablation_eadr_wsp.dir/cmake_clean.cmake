file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eadr_wsp.dir/bench_ablation_eadr_wsp.cc.o"
  "CMakeFiles/bench_ablation_eadr_wsp.dir/bench_ablation_eadr_wsp.cc.o.d"
  "bench_ablation_eadr_wsp"
  "bench_ablation_eadr_wsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eadr_wsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
