# Empty compiler generated dependencies file for lightpc_tests.
# This may be replaced when dependencies are built.
