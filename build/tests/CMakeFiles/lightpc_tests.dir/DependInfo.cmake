
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_backing_store.cc" "tests/CMakeFiles/lightpc_tests.dir/test_backing_store.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_backing_store.cc.o.d"
  "/root/repo/tests/test_checkpoint.cc" "tests/CMakeFiles/lightpc_tests.dir/test_checkpoint.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_checkpoint.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/lightpc_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/lightpc_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/lightpc_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/lightpc_tests.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_l1_cache.cc" "tests/CMakeFiles/lightpc_tests.dir/test_l1_cache.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_l1_cache.cc.o.d"
  "/root/repo/tests/test_mem_devices.cc" "tests/CMakeFiles/lightpc_tests.dir/test_mem_devices.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_mem_devices.cc.o.d"
  "/root/repo/tests/test_misc.cc" "tests/CMakeFiles/lightpc_tests.dir/test_misc.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_misc.cc.o.d"
  "/root/repo/tests/test_object_pool.cc" "tests/CMakeFiles/lightpc_tests.dir/test_object_pool.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_object_pool.cc.o.d"
  "/root/repo/tests/test_pecos_misc.cc" "tests/CMakeFiles/lightpc_tests.dir/test_pecos_misc.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_pecos_misc.cc.o.d"
  "/root/repo/tests/test_platform.cc" "tests/CMakeFiles/lightpc_tests.dir/test_platform.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_platform.cc.o.d"
  "/root/repo/tests/test_platform_ports.cc" "tests/CMakeFiles/lightpc_tests.dir/test_platform_ports.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_platform_ports.cc.o.d"
  "/root/repo/tests/test_pmdk_streams.cc" "tests/CMakeFiles/lightpc_tests.dir/test_pmdk_streams.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_pmdk_streams.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/lightpc_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_psm.cc" "tests/CMakeFiles/lightpc_tests.dir/test_psm.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_psm.cc.o.d"
  "/root/repo/tests/test_psm_properties.cc" "tests/CMakeFiles/lightpc_tests.dir/test_psm_properties.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_psm_properties.cc.o.d"
  "/root/repo/tests/test_psm_reliability.cc" "tests/CMakeFiles/lightpc_tests.dir/test_psm_reliability.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_psm_reliability.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/lightpc_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_sng.cc" "tests/CMakeFiles/lightpc_tests.dir/test_sng.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_sng.cc.o.d"
  "/root/repo/tests/test_soak.cc" "tests/CMakeFiles/lightpc_tests.dir/test_soak.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_soak.cc.o.d"
  "/root/repo/tests/test_start_gap.cc" "tests/CMakeFiles/lightpc_tests.dir/test_start_gap.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_start_gap.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/lightpc_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_symbol_ecc.cc" "tests/CMakeFiles/lightpc_tests.dir/test_symbol_ecc.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_symbol_ecc.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/lightpc_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_table2_fidelity.cc" "tests/CMakeFiles/lightpc_tests.dir/test_table2_fidelity.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_table2_fidelity.cc.o.d"
  "/root/repo/tests/test_tag_cache.cc" "tests/CMakeFiles/lightpc_tests.dir/test_tag_cache.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_tag_cache.cc.o.d"
  "/root/repo/tests/test_timed_mem.cc" "tests/CMakeFiles/lightpc_tests.dir/test_timed_mem.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_timed_mem.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/lightpc_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/lightpc_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_workload.cc.o.d"
  "/root/repo/tests/test_xcc.cc" "tests/CMakeFiles/lightpc_tests.dir/test_xcc.cc.o" "gcc" "tests/CMakeFiles/lightpc_tests.dir/test_xcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lightpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
