file(REMOVE_RECURSE
  "CMakeFiles/consolidation.dir/consolidation.cc.o"
  "CMakeFiles/consolidation.dir/consolidation.cc.o.d"
  "consolidation"
  "consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
