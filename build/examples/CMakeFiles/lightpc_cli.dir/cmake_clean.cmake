file(REMOVE_RECURSE
  "CMakeFiles/lightpc_cli.dir/lightpc_cli.cc.o"
  "CMakeFiles/lightpc_cli.dir/lightpc_cli.cc.o.d"
  "lightpc_cli"
  "lightpc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightpc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
