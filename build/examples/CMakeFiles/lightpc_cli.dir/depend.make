# Empty dependencies file for lightpc_cli.
# This may be replaced when dependencies are built.
