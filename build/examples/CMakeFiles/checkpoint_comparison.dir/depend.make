# Empty dependencies file for checkpoint_comparison.
# This may be replaced when dependencies are built.
