file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_comparison.dir/checkpoint_comparison.cc.o"
  "CMakeFiles/checkpoint_comparison.dir/checkpoint_comparison.cc.o.d"
  "checkpoint_comparison"
  "checkpoint_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
