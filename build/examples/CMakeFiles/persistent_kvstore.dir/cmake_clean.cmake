file(REMOVE_RECURSE
  "CMakeFiles/persistent_kvstore.dir/persistent_kvstore.cc.o"
  "CMakeFiles/persistent_kvstore.dir/persistent_kvstore.cc.o.d"
  "persistent_kvstore"
  "persistent_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
