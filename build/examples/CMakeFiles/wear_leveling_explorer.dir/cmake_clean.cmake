file(REMOVE_RECURSE
  "CMakeFiles/wear_leveling_explorer.dir/wear_leveling_explorer.cc.o"
  "CMakeFiles/wear_leveling_explorer.dir/wear_leveling_explorer.cc.o.d"
  "wear_leveling_explorer"
  "wear_leveling_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wear_leveling_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
