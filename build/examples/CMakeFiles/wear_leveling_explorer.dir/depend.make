# Empty dependencies file for wear_leveling_explorer.
# This may be replaced when dependencies are built.
