#!/usr/bin/env python3
"""Build and run the kernel sweep driver, then summarize the results.

Thin stdlib-only wrapper around bench/sweep_main: configures/builds
the build tree if needed, runs the driver (forwarding -j/--events/
--reps), and prints a legacy-vs-pooled table from the emitted
BENCH_kernel.json.

Usage:
    scripts/sweep.py [-j N] [--events N] [--reps N]
                     [--build-dir DIR] [--out FILE]
"""

import argparse
import json
import os
import subprocess
import sys


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def build(build_dir):
    if not os.path.exists(os.path.join(build_dir, "CMakeCache.txt")):
        subprocess.run(
            ["cmake", "-B", build_dir, "-S", repo_root(), "-G", "Ninja"],
            check=True)
    subprocess.run(
        ["cmake", "--build", build_dir, "--target", "sweep_main"],
        check=True)


def main():
    parser = argparse.ArgumentParser(
        description="Run the event-kernel benchmark sweep.")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker threads for the sweep driver "
                             "(0 = hardware concurrency)")
    parser.add_argument("--events", type=int, default=2_000_000,
                        help="events per measured run")
    parser.add_argument("--reps", type=int, default=5,
                        help="repetitions per configuration (median)")
    parser.add_argument("--build-dir", default=None,
                        help="CMake build tree (default: <repo>/build)")
    parser.add_argument("--out", default=None,
                        help="output JSON path "
                             "(default: <repo>/BENCH_kernel.json)")
    args = parser.parse_args()

    build_dir = args.build_dir or os.path.join(repo_root(), "build")
    out = args.out or os.path.join(repo_root(), "BENCH_kernel.json")

    build(build_dir)

    driver = os.path.join(build_dir, "bench", "sweep_main")
    subprocess.run(
        [driver, "-j", str(args.jobs), "--events", str(args.events),
         "--reps", str(args.reps), "--out", out],
        check=True)

    with open(out) as f:
        data = json.load(f)

    by_workload = {}
    for cfg in data["configs"]:
        by_workload.setdefault(cfg["workload"], {})[cfg["kernel"]] = cfg

    print()
    print(f"{'workload':<18} {'legacy ns':>10} {'pooled ns':>10} "
          f"{'speedup':>8} {'pooled allocs/ev':>17}")
    for workload, kernels in by_workload.items():
        legacy, pooled = kernels["legacy"], kernels["pooled"]
        print(f"{workload:<18} {legacy['ns_per_event']:>10.2f} "
              f"{pooled['ns_per_event']:>10.2f} "
              f"{data['speedup'][workload]:>7.2f}x "
              f"{pooled['allocs_per_event']:>17.4f}")
    print(f"\nresults: {out}")

    slowest = min(data["speedup"].values())
    if slowest < 1.0:
        print("warning: pooled kernel slower than legacy baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
