#!/bin/sh
# Build everything, run the full test suite, and regenerate every
# paper figure, teeing the transcripts the repository ships with
# (test_output.txt / bench_output.txt).
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "### $(basename "$b")" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
done
