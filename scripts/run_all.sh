#!/usr/bin/env bash
# Build everything, run the full test suite, regenerate every paper
# figure, and refresh BENCH_kernel.json, BENCH_service.json,
# BENCH_fault.json, BENCH_ras.json, BENCH_compound.json and
# BENCH_cluster.json (the bench loop below runs
# bench_service_availability, fault_campaign_main,
# ras_campaign_main, bench_compound_fault and bench_cluster with their default
# full-size arguments from the repo root), teeing the transcripts the
# repository ships with (test_output.txt / bench_output.txt).
#
# Usage: scripts/run_all.sh [-j N]
#   -j N   parallelism for the build, the test run, the kernel sweep
#          driver, and the campaign benches (--threads N; results are
#          digest-identical at any thread count).
#
# pipefail matters: every stage tees into a transcript, and without
# it a failing ctest/bench exit status would be masked by tee's.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=2
while getopts "j:" opt; do
    case "$opt" in
    j) jobs=$OPTARG ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

# -j must be a strictly positive integer; zero, negatives, and junk
# would otherwise reach cmake/ctest (which reject them) or wrap into
# absurd worker counts. Fall back to one worker — results are
# digest-identical at any thread count, so this only costs wall-clock.
if ! [[ "$jobs" =~ ^[1-9][0-9]*$ ]]; then
    echo "warning: invalid -j '$jobs' (expected a positive integer);" \
         "falling back to 1 worker" >&2
    jobs=1
fi

cmake -B build -G Ninja
cmake --build build -j "$jobs"

ctest --test-dir build --output-on-failure -j "$jobs" 2>&1 \
    | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    # The sweep driver runs below with its own arguments.
    [ "$(basename "$b")" = sweep_main ] && continue
    echo "### $(basename "$b")" | tee -a bench_output.txt
    # The campaign benches fan seeded trials across a worker pool;
    # their merged results (digests included) are identical at any
    # thread count, so -j only changes wall-clock.
    case "$(basename "$b")" in
    fault_campaign_main | ras_campaign_main | bench_compound_fault | \
        bench_service_availability | bench_cluster)
        "$b" --threads "$jobs" 2>&1 | tee -a bench_output.txt ;;
    *)
        "$b" 2>&1 | tee -a bench_output.txt ;;
    esac
    echo | tee -a bench_output.txt
done

echo "### sweep_main" | tee -a bench_output.txt
build/bench/sweep_main -j "$jobs" 2>&1 | tee -a bench_output.txt
